package service

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"relpipe"
	"relpipe/internal/fleet"
	"relpipe/internal/search"
)

// fleetTestSetup optimizes a mapping for the shared small instance and
// returns the register request every fleet endpoint test starts from.
// The period bound carries 4x slack over the optimized worst case so a
// remap has room to re-replicate on the survivors.
func fleetTestSetup(t *testing.T, id string) relpipe.FleetRegisterRequest {
	t.Helper()
	in := testInstance(1)
	res, _, err := search.Optimize(in.Chain, in.Platform, search.Options{Restarts: 2, Budget: 500, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ev := res.Ev
	return relpipe.FleetRegisterRequest{
		ID:             id,
		Instance:       in,
		Mapping:        res.M,
		Bounds:         relpipe.Bounds{Period: 4 * ev.WorstPeriod},
		MinReliability: 1e-12,
		Mission:        1e6,
		Search:         &relpipe.SearchParams{Restarts: 2, Budget: 500, Seed: 1},
	}
}

// tickUntil drives the controller until cond holds (the background
// real-clock loop also ticks; manual ticks just make tests fast).
func tickUntil(t *testing.T, s *Server, id string, cond func(fleet.Status) bool) fleet.Status {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		s.Fleet().Tick()
		if st, ok := s.Fleet().Status(id); ok && cond(st) {
			return st
		}
		time.Sleep(2 * time.Millisecond)
	}
	st, _ := s.Fleet().Status(id)
	t.Fatalf("condition not reached; status %+v", st)
	return fleet.Status{}
}

// TestFleetLifecycle walks the whole deployment lifecycle over HTTP:
// register (201), list, status, feed a crash report, observe the
// autonomous warm-started remap execute as a job under the fleet
// client id and get adopted, then deregister.
func TestFleetLifecycle(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	req := fleetTestSetup(t, "web")

	var st relpipe.FleetDeployment
	b, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/v1/fleet/deployments", "application/json", strings.NewReader(string(b)))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated || st.ID != "web" || st.Reliability <= 0 {
		t.Fatalf("register = %d %+v", resp.StatusCode, st)
	}
	// Duplicate id is a conflict.
	if code := postJSON(t, ts.URL+"/v1/fleet/deployments", req, nil); code != http.StatusConflict {
		t.Fatalf("duplicate register = %d, want 409", code)
	}

	var list relpipe.FleetListResponse
	if code := getJSONDoc(t, ts.URL+"/v1/fleet/deployments", &list); code != http.StatusOK || len(list.Deployments) != 1 {
		t.Fatalf("list = %d %+v", code, list)
	}

	// Crash a processor that holds a replica; the controller must
	// submit exactly one warm-started remap and adopt its result.
	victim := st.Mapping.Procs[0][0]
	code := postJSON(t, ts.URL+"/v1/fleet/deployments/web/events",
		relpipe.FleetEventsRequest{Events: []relpipe.FleetEvent{{Type: fleet.EventCrash, Proc: victim}}}, nil)
	if code != http.StatusAccepted {
		t.Fatalf("ingest = %d, want 202", code)
	}
	final := tickUntil(t, s, "web", func(st fleet.Status) bool { return st.RemapsAdopted >= 1 })
	if final.Remaps != 1 || final.Degraded {
		t.Fatalf("after adoption: %+v", final)
	}
	for _, u := range final.Mapping.Procs {
		for _, proc := range u {
			if proc == victim {
				t.Fatalf("adopted mapping still uses dead processor %d", victim)
			}
		}
	}
	// The remap executed as a regular async job under the fleet client.
	fleetJobs := s.Jobs().Snapshot("fleet")
	if len(fleetJobs) != 1 || fleetJobs[0].Kind != "fleet-remap" {
		t.Fatalf("fleet jobs = %+v", fleetJobs)
	}

	var got relpipe.FleetDeployment
	if code := getJSONDoc(t, ts.URL+"/v1/fleet/deployments/web", &got); code != http.StatusOK || got.RemapsAdopted != 1 {
		t.Fatalf("status = %d %+v", code, got)
	}

	dreq, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/fleet/deployments/web", nil)
	dresp, err := http.DefaultClient.Do(dreq)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("deregister = %d", dresp.StatusCode)
	}
	if code := getJSONDoc(t, ts.URL+"/v1/fleet/deployments/web", nil); code != http.StatusNotFound {
		t.Fatalf("status after deregister = %d, want 404", code)
	}
}

// TestFleetEventStream covers the SSE decision stream: an initial
// "status" event, then every decision from the requested sequence on.
func TestFleetEventStream(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	req := fleetTestSetup(t, "sse")
	if code := postJSON(t, ts.URL+"/v1/fleet/deployments", req, nil); code != http.StatusCreated {
		t.Fatalf("register = %d", code)
	}
	st, _ := s.Fleet().Status("sse")
	postJSON(t, ts.URL+"/v1/fleet/deployments/sse/events",
		relpipe.FleetEventsRequest{Events: []relpipe.FleetEvent{{Type: fleet.EventCrash, Proc: st.Mapping.Procs[0][0]}}}, nil)
	tickUntil(t, s, "sse", func(st fleet.Status) bool { return st.RemapsAdopted >= 1 })

	resp, err := http.Get(ts.URL + "/v1/fleet/deployments/sse/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type = %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	var events []string
	var sawAdopt bool
	for sc.Scan() && !sawAdopt {
		line := sc.Text()
		if ev, ok := strings.CutPrefix(line, "event: "); ok {
			events = append(events, ev)
		}
		if data, ok := strings.CutPrefix(line, "data: "); ok && events[len(events)-1] == "decision" {
			var d relpipe.FleetDecision
			if err := json.Unmarshal([]byte(data), &d); err != nil {
				t.Fatalf("bad decision payload: %v", err)
			}
			if d.Kind == fleet.DecisionAdopt {
				sawAdopt = true
			}
		}
	}
	if len(events) == 0 || events[0] != "status" {
		t.Fatalf("stream events = %v, want leading status", events)
	}
	if !sawAdopt {
		t.Fatalf("no remap-adopted decision on the stream; events = %v", events)
	}
}

// TestFleetClientIsolation is the jobs-store pressure test: fleet
// remaps count against the dedicated fleet client id, so a controller
// that storms into the per-client cap gets its submission rejected —
// breaker open, remap-failed decision — while an interactive client's
// jobs are neither blocked nor evicted.
func TestFleetClientIsolation(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1, MaxJobsPerClient: 1})

	// Occupy the single worker so admitted remap jobs stay live
	// (blocked waiting for a pool slot) instead of completing.
	block := make(chan struct{})
	release := func() { close(block) }
	released := false
	t.Cleanup(func() {
		if !released {
			release()
		}
	})
	go s.pool.DoWait(context.Background(), func() (any, error) { <-block; return nil, nil })

	for _, id := range []string{"d1", "d2"} {
		req := fleetTestSetup(t, id)
		if code := postJSON(t, ts.URL+"/v1/fleet/deployments", req, nil); code != http.StatusCreated {
			t.Fatalf("register %s = %d", id, code)
		}
	}

	// Crash d1: its remap job is admitted (1 live job = the fleet
	// client's whole cap) and blocks on the occupied pool.
	st1, _ := s.Fleet().Status("d1")
	postJSON(t, ts.URL+"/v1/fleet/deployments/d1/events",
		relpipe.FleetEventsRequest{Events: []relpipe.FleetEvent{{Type: fleet.EventCrash, Proc: st1.Mapping.Procs[0][0]}}}, nil)
	tickUntil(t, s, "d1", func(st fleet.Status) bool { return st.RemapInFlight })

	// Crash d2: its remap submission hits the per-client cap — 429 at
	// the engine, breaker-open + remap-failed at the controller.
	st2, _ := s.Fleet().Status("d2")
	postJSON(t, ts.URL+"/v1/fleet/deployments/d2/events",
		relpipe.FleetEventsRequest{Events: []relpipe.FleetEvent{{Type: fleet.EventCrash, Proc: st2.Mapping.Procs[0][0]}}}, nil)
	st2 = tickUntil(t, s, "d2", func(st fleet.Status) bool { return st.RemapsFailed >= 1 })
	if !st2.BreakerOpen || st2.Remaps != 0 {
		t.Fatalf("d2 after cap rejection: %+v", st2)
	}
	var failed *fleet.Decision
	for i := range st2.Decisions {
		if st2.Decisions[i].Kind == fleet.DecisionRemapFailed {
			failed = &st2.Decisions[i]
		}
	}
	if failed == nil || !strings.Contains(failed.Reason, "per-client live job cap") {
		t.Fatalf("no cap-rejection decision; decisions = %+v", st2.Decisions)
	}

	// The interactive side is untouched: a user job is admitted under
	// its own client id and nothing of theirs was evicted.
	body := fmt.Sprintf(`{"kind":"frontier","client":"alice","request":{"instance":%s}}`,
		mustJSON(t, testInstance(1)))
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var job relpipe.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("interactive submit during fleet storm = %d, want 202", resp.StatusCode)
	}
	if _, ok := s.Jobs().Get(job.ID); !ok {
		t.Fatalf("interactive job %s evicted", job.ID)
	}

	// Release the pool so everything drains and d1's remap completes.
	released = true
	release()
	tickUntil(t, s, "d1", func(st fleet.Status) bool { return !st.RemapInFlight })
}

// TestFleetValidation covers the error mapping of the fleet routes.
func TestFleetValidation(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	if code := getJSONDoc(t, ts.URL+"/v1/fleet/deployments/nope", nil); code != http.StatusNotFound {
		t.Fatalf("unknown status = %d, want 404", code)
	}
	if code := postJSON(t, ts.URL+"/v1/fleet/deployments/nope/events",
		relpipe.FleetEventsRequest{Events: []relpipe.FleetEvent{{Type: fleet.EventHeartbeat, Proc: 0}}}, nil); code != http.StatusNotFound {
		t.Fatalf("unknown ingest = %d, want 404", code)
	}
	if code := postJSON(t, ts.URL+"/v1/fleet/deployments",
		relpipe.FleetRegisterRequest{ID: "x"}, nil); code != http.StatusBadRequest {
		t.Fatalf("invalid register = %d, want 400", code)
	}
	req := fleetTestSetup(t, "caps")
	req.Search = &relpipe.SearchParams{Restarts: 1 << 20}
	if code := postJSON(t, ts.URL+"/v1/fleet/deployments", req, nil); code != http.StatusBadRequest {
		t.Fatalf("over-cap search register = %d, want 400", code)
	}
	req = fleetTestSetup(t, "events")
	if code := postJSON(t, ts.URL+"/v1/fleet/deployments", req, nil); code != http.StatusCreated {
		t.Fatal("register failed")
	}
	if code := postJSON(t, ts.URL+"/v1/fleet/deployments/events/events",
		relpipe.FleetEventsRequest{Events: []relpipe.FleetEvent{{Type: fleet.EventCrash, Proc: 99}}}, nil); code != http.StatusBadRequest {
		t.Fatal("out-of-range proc accepted")
	}
	if code := postJSON(t, ts.URL+"/v1/fleet/deployments/events/events",
		relpipe.FleetEventsRequest{}, nil); code != http.StatusBadRequest {
		t.Fatal("empty event batch accepted")
	}
	_ = s
}

// TestFleetDisabled verifies -fleet=false removes the routes entirely.
func TestFleetDisabled(t *testing.T) {
	s, ts := newTestServer(t, Options{DisableFleet: true})
	if s.Fleet() != nil {
		t.Fatal("controller constructed despite DisableFleet")
	}
	if code := getJSONDoc(t, ts.URL+"/v1/fleet/deployments", nil); code != http.StatusNotFound {
		t.Fatalf("fleet route with fleet disabled = %d, want 404", code)
	}
}

// TestReadyz pins the liveness/readiness split: /healthz stays 200
// through a drain (pure liveness), /readyz flips to 503 the moment
// shutdown begins.
func TestReadyz(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	var doc struct {
		Status string `json:"status"`
	}
	if code := getJSONDoc(t, ts.URL+"/readyz", &doc); code != http.StatusOK || doc.Status != "ok" {
		t.Fatalf("readyz before shutdown = %d %+v", code, doc)
	}
	s.BeginShutdown()
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable || doc.Status != "draining" {
		t.Fatalf("readyz during drain = %d %+v, want 503 draining", resp.StatusCode, doc)
	}
	if code := getJSONDoc(t, ts.URL+"/healthz", &doc); code != http.StatusOK || doc.Status != "ok" {
		t.Fatalf("healthz during drain = %d %+v, want 200 ok", code, doc)
	}
}

// getJSONDoc GETs url and decodes the body into out when the answer is
// 200, returning the status code.
func getJSONDoc(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
