package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"strconv"

	"relpipe"
	"relpipe/internal/jobs"
	"relpipe/internal/obs"
)

// This file is the HTTP face of the async job engine (internal/jobs):
// submit-and-poll execution of the existing solve kinds with streaming
// progress over SSE and cancellation through the solvers' context
// plumbing.
//
// Execution and determinism: a job runs the same parsed solve closure
// through the same solveToBytes path (marshal + cache) as the
// synchronous endpoint, inside the same worker pool — so its result is
// bit-identical to the synchronous response for the same request, and a
// submitted key that is already cached completes the job instantly
// without occupying a worker. Unlike the fail-fast synchronous path, an
// admitted job *waits* for a pool slot (Pool.DoWait); backpressure
// moves to the job-store caps, which answer 429 + Retry-After.

// jobStatusCode is the submit answer for accepted jobs.
const jobStatusCode = http.StatusAccepted

// handleJobSubmit admits one async job ("POST /v1/jobs").
func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	s.metrics.Request("jobs")
	body, status, err := readBody(w, r, s.opts.MaxBodyBytes)
	if err != nil {
		s.writeError(w, status, err)
		return
	}
	var req relpipe.JobSubmitRequest
	if err := unmarshalStrict(body, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	st, err := s.submitJob(req)
	if err != nil {
		s.writeError(w, jobErrStatus(err), err)
		return
	}
	s.writeJSON(w, jobStatusCode, st)
}

// submitJob validates, dedups against the result cache, and admits a
// job. It returns the accepted job's status snapshot (already terminal
// for a cache hit).
func (s *Server) submitJob(req relpipe.JobSubmitRequest) (relpipe.JobStatus, error) {
	var zero relpipe.JobStatus
	if req.Kind == "batch" {
		return s.submitBatchJob(req)
	}
	parse, ok := batchParsers[req.Kind]
	if !ok {
		return zero, fmt.Errorf("jobs: unknown kind %q", req.Kind)
	}
	key, solve, err := parse(req.Request, s.exec)
	if err != nil {
		return zero, err
	}
	breq := Request{
		Kind:  req.Kind,
		Key:   req.Kind + "|" + key,
		Route: routeKey(key),
		Body:  req.Request,
		solve: solve,
	}
	// Dedup against the result cache: an async job for a cached key
	// completes instantly (no worker, no queue wait).
	if b, ok := s.cache.Get(breq.Key); ok {
		s.metrics.CacheHit()
		j, err := s.jobs.SubmitCompleted(req.Kind, req.Client, jobs.Outcome{Status: http.StatusOK, Body: b})
		if err != nil {
			return zero, err
		}
		return relpipe.JobStatus(j.Status()), nil
	}
	// The trace ID is allocated at submit time so the 202 status already
	// carries it; the trace itself is recorded when the runner executes.
	// The solve goes through the active backend under the async contract
	// (ExecuteWait): in cluster mode a remote-owned instance forwards to
	// its owner — cancelling the job severs the hop — and an unreachable
	// owner falls back to a local solve, exactly like the sync path.
	tid := obs.NewTraceID()
	j, err := s.jobs.SubmitTraced(context.Background(), req.Kind, req.Client, tid,
		func(ctx context.Context, ctl jobs.Control) jobs.Outcome {
			tctx, root := s.recorder.StartTraceID(ctx, tid, "job "+req.Kind)
			out := s.backend().ExecuteWait(tctx, breq, ctl.Running, ctl.Progress)
			root.SetAttr("status", strconv.Itoa(out.status))
			root.End()
			return jobs.Outcome{Status: out.status, Body: out.body}
		})
	if err != nil {
		return zero, err
	}
	return relpipe.JobStatus(j.Status()), nil
}

// submitBatchJob admits a whole /v1/batch document as one job: the
// items fan out through the shared batch skeleton (runBatchItems) but
// execute on the async path — each item honours the job's context (so
// DELETE aborts in-flight item solves), waits for a pool slot instead
// of shedding 429, and runs without the synchronous request timeout,
// exactly like a single-kind job. Progress counts completed items. The
// fan-out itself runs on the job's goroutine, never inside a pool
// slot: its items occupy the slots, and a fan-out holding a slot while
// waiting for them would deadlock a single-worker pool.
func (s *Server) submitBatchJob(req relpipe.JobSubmitRequest) (relpipe.JobStatus, error) {
	var zero relpipe.JobStatus
	var batch relpipe.BatchRequest
	if err := unmarshalStrict(req.Request, &batch); err != nil {
		return zero, err
	}
	if len(batch.Jobs) == 0 {
		return zero, errors.New("batch: no jobs")
	}
	if len(batch.Jobs) > s.opts.MaxBatchJobs {
		return zero, fmt.Errorf("batch: %d jobs exceeds limit %d", len(batch.Jobs), s.opts.MaxBatchJobs)
	}
	tid := obs.NewTraceID()
	j, err := s.jobs.SubmitTraced(context.Background(), req.Kind, req.Client, tid,
		func(jctx context.Context, ctl jobs.Control) jobs.Outcome {
			ctx, root := s.recorder.StartTraceID(jctx, tid, "job batch")
			defer root.End()
			ctl.Running()
			total := int64(len(batch.Jobs))
			ctl.Progress(0, total) // the item count is known up front
			root.SetAttr("items", strconv.FormatInt(total, 10))
			results := s.runBatchItems(batch.Jobs, func(kind string, parse parser, body []byte) outcome {
				s.metrics.Request(kind)
				if err := ctx.Err(); err != nil {
					return errorOutcome(statusForJob(err), err)
				}
				itemKey, solve, err := parse(body, s.exec)
				if err != nil {
					return errorOutcome(http.StatusBadRequest, err)
				}
				return s.backend().ExecuteWait(ctx, Request{
					Kind:  kind,
					Key:   kind + "|" + itemKey,
					Route: routeKey(itemKey),
					Body:  body,
					solve: solve,
				}, nil, nil)
			}, func(done int64) { ctl.Progress(done, total) })
			if err := ctx.Err(); err != nil {
				return errorOutcomeJob(err)
			}
			b, err := json.Marshal(relpipe.BatchResponse{Results: results})
			if err != nil {
				return errorOutcomeJob(fmt.Errorf("%w: %v", errEncodeResponse, err))
			}
			return jobs.Outcome{Status: http.StatusOK, Body: b}
		})
	if err != nil {
		return zero, err
	}
	return relpipe.JobStatus(j.Status()), nil
}

// handleJobStatus serves one job snapshot ("GET /v1/jobs/{id}"). A job
// unknown here but owned by a cluster peer is answered through the
// cross-node fan-in — submit on one node, poll from any node.
func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	s.metrics.Request("jobs")
	j, ok := s.jobs.Get(r.PathValue("id"))
	if !ok {
		if out, found := s.clusterJobFanIn(r, http.MethodGet, "/v1/jobs/"+url.PathEscape(r.PathValue("id"))); found {
			s.writeOutcome(w, out)
			return
		}
		s.writeError(w, http.StatusNotFound, errors.New("jobs: no such job"))
		return
	}
	s.writeJSON(w, http.StatusOK, relpipe.JobStatus(j.Status()))
}

// handleJobList serves every stored job, newest first, optionally
// filtered by ?client= ("GET /v1/jobs"). In cluster mode the listing
// merges every peer's jobs into one cluster-wide view (each entry's
// node field says where it runs).
func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	s.metrics.Request("jobs")
	// relpipe.JobStatus is an alias of jobs.Status, so the snapshot
	// slice is already the wire type.
	list := s.jobs.Snapshot(r.URL.Query().Get("client"))
	list = s.clusterJobListMerge(r, list)
	s.writeJSON(w, http.StatusOK, relpipe.JobListResponse{Jobs: list})
}

// handleJobCancel requests cancellation ("DELETE /v1/jobs/{id}"). The
// answer is the job's current snapshot; the state flips to cancelled
// asynchronously, as soon as the solver observes its cancelled context
// (solvers poll between shards/iterations). Cancelling a terminal job
// is a no-op that returns its result. Jobs running on a cluster peer
// are cancelled through the same fan-in that serves their status.
func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	s.metrics.Request("jobs")
	j, ok, _ := s.jobs.Cancel(r.PathValue("id"))
	if !ok {
		if out, found := s.clusterJobFanIn(r, http.MethodDelete, "/v1/jobs/"+url.PathEscape(r.PathValue("id"))); found {
			s.writeOutcome(w, out)
			return
		}
		s.writeError(w, http.StatusNotFound, errors.New("jobs: no such job"))
		return
	}
	s.writeJSON(w, http.StatusOK, relpipe.JobStatus(j.Status()))
}

// handleJobEvents streams a job's lifecycle over Server-Sent Events
// ("GET /v1/jobs/{id}/events"): an immediate "progress" event with the
// current snapshot, a "progress" event per observable change (monotone
// — the engine clamps out-of-order reports from parallel workers), and
// a terminal "done" event, after which the stream closes. Event data is
// the relpipe.JobStatus document. The stream also closes when the
// client disconnects or the server begins shutdown (final event
// "shutdown" carrying the last snapshot).
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	s.metrics.Request("jobs")
	j, ok := s.jobs.Get(r.PathValue("id"))
	if !ok {
		if s.clusterJobEventsProxy(w, r) {
			return
		}
		s.writeError(w, http.StatusNotFound, errors.New("jobs: no such job"))
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		s.writeError(w, http.StatusInternalServerError, errors.New("jobs: response writer cannot stream"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	ch := j.Subscribe()
	defer j.Unsubscribe(ch)
	for {
		st := j.Status()
		if st.State.Terminal() {
			writeSSE(w, fl, "done", st)
			return
		}
		writeSSE(w, fl, "progress", st)
		select {
		case <-ch:
		case <-j.Done():
		case <-r.Context().Done():
			return
		case <-s.shutdownC:
			writeSSE(w, fl, "shutdown", j.Status())
			return
		}
	}
}

// writeSSE emits one Server-Sent Event with a JSON payload.
func writeSSE(w http.ResponseWriter, fl http.Flusher, event string, st jobs.Status) {
	b, err := json.Marshal(st)
	if err != nil {
		return
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, b)
	fl.Flush()
}

// errorOutcomeJob renders an error as a job outcome.
func errorOutcomeJob(err error) jobs.Outcome {
	out := errorOutcome(statusForJob(err), err)
	return jobs.Outcome{Status: out.status, Body: out.body}
}

// statusForJob extends statusFor with the cancellation code: a job
// aborted through DELETE records 499 (the de-facto "client closed
// request" status) as its would-have-been HTTP status; the job state
// is what reports the cancellation.
func statusForJob(err error) int {
	if errors.Is(err, context.Canceled) {
		return 499
	}
	return statusFor(err)
}

// jobErrStatus maps submit-time errors to HTTP statuses: the capacity
// errors are backpressure (429 + Retry-After), shutdown is 503,
// anything else is a bad request.
func jobErrStatus(err error) int {
	switch {
	case errors.Is(err, jobs.ErrStoreFull), errors.Is(err, jobs.ErrClientCap):
		return http.StatusTooManyRequests
	case errors.Is(err, jobs.ErrClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}
