package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"relpipe"
	"relpipe/internal/jobs"
)

// submitJobHTTP posts a job submission and decodes the accepted status.
func submitJobHTTP(t *testing.T, url string, kind string, request any, client string) relpipe.JobStatus {
	t.Helper()
	raw, err := json.Marshal(request)
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(relpipe.JobSubmitRequest{Kind: kind, Request: raw, Client: client})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		b := new(bytes.Buffer)
		b.ReadFrom(resp.Body)
		t.Fatalf("job submit = %d: %s", resp.StatusCode, b)
	}
	var st relpipe.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// waitJob polls a job until terminal.
func waitJob(t *testing.T, url, id string) relpipe.JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(url + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st relpipe.JobStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.State.Terminal() {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never finished: %+v", id, st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// syncBody posts a request to a synchronous endpoint and returns the
// raw response body.
func syncBody(t *testing.T, url string, v any) (int, []byte) {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp.StatusCode, buf.Bytes()
}

// TestJobDifferentialAgainstSync is the acceptance differential: for
// optimize (heuristic), adapt and frontier kinds, at solver parallelism
// 1 and 8, the async job's result document is bit-identical to the
// synchronous endpoint's for the same request. Caching is disabled so
// both paths genuinely solve (the cache would otherwise hand the job
// the sync bytes verbatim).
func TestJobDifferentialAgainstSync(t *testing.T) {
	hom := testInstance(3)
	het := hetInstance(4, 30, 10)
	cases := []struct {
		kind string
		path string
		req  any
	}{
		{"optimize", "/v1/optimize", relpipe.OptimizeRequest{
			Instance: het, Bounds: relpipe.Bounds{Period: 260},
			Method: "heuristic",
			Search: &relpipe.SearchParams{Restarts: 4, Budget: 2000, Seed: 7},
		}},
		{"adapt", "/v1/adapt", relpipe.AdaptRequest{
			Instance: hom, Policy: "greedy", Horizon: 500,
			LifeScale: 1e5, Replications: 8, Seed: 5,
		}},
		{"frontier", "/v1/frontier", relpipe.FrontierRequest{Instance: hom}},
	}
	for _, par := range []int{1, 8} {
		for _, tc := range cases {
			t.Run(fmt.Sprintf("%s/P=%d", tc.kind, par), func(t *testing.T) {
				// Independent servers so the job cannot reuse the sync
				// server's cache or flight.
				_, tsSync := newTestServer(t, Options{Workers: 2, CacheSize: -1, SolverParallelism: par})
				_, tsJobs := newTestServer(t, Options{Workers: 2, CacheSize: -1, SolverParallelism: par})

				code, want := syncBody(t, tsSync.URL+tc.path, tc.req)
				if code != http.StatusOK {
					t.Fatalf("sync = %d: %s", code, want)
				}
				st := submitJobHTTP(t, tsJobs.URL, tc.kind, tc.req, "")
				st = waitJob(t, tsJobs.URL, st.ID)
				if st.State != relpipe.JobSucceeded {
					t.Fatalf("job state = %s: %s", st.State, st.Result)
				}
				if !bytes.Equal(want, st.Result) {
					t.Fatalf("async result differs from sync:\nsync: %s\nasync: %s", want, st.Result)
				}
				if st.Progress.Done != st.Progress.Total || st.Progress.Total == 0 {
					t.Fatalf("terminal progress = %+v, want done == total > 0", st.Progress)
				}
			})
		}
	}
}

// TestJobSSEMonotonicProgress is the acceptance SSE check: a
// multi-restart search job streams progress events whose done counts
// are monotonically non-decreasing, reach the restart total, and end
// with a done event carrying the result.
func TestJobSSEMonotonicProgress(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, CacheSize: -1, SolverParallelism: 1})
	// A 300-stage chain at the full default budget keeps each restart in
	// the ~100ms range: the SSE stream attaches long before the first
	// restart lands and observes the portfolio complete one restart at a
	// time.
	req := relpipe.OptimizeRequest{
		Instance: hetInstance(9, 300, 12), Bounds: relpipe.Bounds{Period: 800},
		Method: "heuristic",
		Search: &relpipe.SearchParams{Restarts: 8, Budget: 200000, Seed: 11},
	}
	st := submitJobHTTP(t, ts.URL, "optimize", req, "")

	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}

	var events []relpipe.JobStatus
	var final relpipe.JobStatus
	gotDone := false
	sc := newSSEScanner(resp.Body)
	for sc.next() {
		var ev relpipe.JobStatus
		if err := json.Unmarshal([]byte(sc.data), &ev); err != nil {
			t.Fatalf("event payload: %v: %s", err, sc.data)
		}
		events = append(events, ev)
		if sc.event == "done" {
			final = ev
			gotDone = true
			break
		}
	}
	if !gotDone {
		t.Fatalf("stream ended without done event (%d events)", len(events))
	}
	if final.State != relpipe.JobSucceeded || len(final.Result) == 0 {
		t.Fatalf("final event = %+v", final)
	}
	last := int64(-1)
	increased := 0
	for i, ev := range events {
		if ev.Progress.Done < last {
			t.Fatalf("progress regressed at event %d: %d after %d", i, ev.Progress.Done, last)
		}
		if ev.Progress.Done > last && last >= 0 {
			increased++
		}
		last = ev.Progress.Done
	}
	if increased == 0 {
		t.Fatal("progress never increased across the stream")
	}
	if final.Progress.Done != 8 || final.Progress.Total != 8 {
		t.Fatalf("final progress = %+v, want 8/8 restarts", final.Progress)
	}
	// The stream must have observed intermediate progress, not only the
	// initial and final snapshots.
	if len(events) < 3 {
		t.Fatalf("only %d events; expected intermediate progress", len(events))
	}
}

// sseScanner is a minimal SSE frame reader for tests.
type sseScanner struct {
	buf         *bytes.Buffer
	src         io.Reader
	event, data string
}

func newSSEScanner(src io.Reader) *sseScanner {
	return &sseScanner{buf: new(bytes.Buffer), src: src}
}

// next reads one event frame (event: + data: lines up to a blank line).
func (s *sseScanner) next() bool {
	s.event, s.data = "", ""
	line := ""
	readLine := func() (string, bool) {
		for {
			if i := bytes.IndexByte(s.buf.Bytes(), '\n'); i >= 0 {
				l := string(s.buf.Next(i + 1))
				return strings.TrimRight(l, "\n"), true
			}
			chunk := make([]byte, 4096)
			n, err := s.src.Read(chunk)
			if n > 0 {
				s.buf.Write(chunk[:n])
				continue
			}
			if err != nil {
				return "", false
			}
		}
	}
	for {
		var ok bool
		line, ok = readLine()
		if !ok {
			return false
		}
		switch {
		case strings.HasPrefix(line, "event:"):
			s.event = strings.TrimSpace(strings.TrimPrefix(line, "event:"))
		case strings.HasPrefix(line, "data:"):
			s.data = strings.TrimSpace(strings.TrimPrefix(line, "data:"))
		case line == "" && s.data != "":
			return true
		}
	}
}

// TestJobCancelThenResubmitDeterminism: cancelling a running job aborts
// it (state cancelled, nothing cached), and re-submitting the identical
// request afterwards produces a result bit-identical to the synchronous
// endpoint — determinism survives cancellation.
func TestJobCancelThenResubmitDeterminism(t *testing.T) {
	srv, ts := newTestServer(t, Options{Workers: 1, SolverParallelism: 1})
	req := relpipe.OptimizeRequest{
		Instance: hetInstance(13, 80, 10), Bounds: relpipe.Bounds{Period: 200},
		Method: "heuristic",
		Search: &relpipe.SearchParams{Restarts: 8, Budget: 50000, Seed: 17},
	}
	st := submitJobHTTP(t, ts.URL, "optimize", req, "")

	// Cancel while queued or running.
	creq, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(creq)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel = %d", resp.StatusCode)
	}
	st = waitJob(t, ts.URL, st.ID)
	if st.State != relpipe.JobCancelled {
		t.Fatalf("state after cancel = %s", st.State)
	}
	if srv.cache.Len() != 0 {
		t.Fatalf("cancelled job polluted the cache (%d entries)", srv.cache.Len())
	}

	// Re-submit: must complete and match the synchronous answer from an
	// untouched server.
	_, tsSync := newTestServer(t, Options{Workers: 1, CacheSize: -1, SolverParallelism: 1})
	code, want := syncBody(t, tsSync.URL+"/v1/optimize", req)
	if code != http.StatusOK {
		t.Fatalf("sync = %d: %s", code, want)
	}
	st2 := submitJobHTTP(t, ts.URL, "optimize", req, "")
	st2 = waitJob(t, ts.URL, st2.ID)
	if st2.State != relpipe.JobSucceeded {
		t.Fatalf("resubmitted job state = %s: %s", st2.State, st2.Result)
	}
	if !bytes.Equal(want, st2.Result) {
		t.Fatalf("resubmitted result differs from sync:\nsync: %s\nasync: %s", want, st2.Result)
	}
}

// TestJobCacheDedupInstantCompletion: a job for a key already in the
// result cache completes instantly (terminal at submit, marked cached,
// no extra solve).
func TestJobCacheDedupInstantCompletion(t *testing.T) {
	srv, ts := newTestServer(t, Options{Workers: 2})
	in := testInstance(21)
	req := relpipe.OptimizeRequest{Instance: in, Method: "dp"}

	code, want := syncBody(t, ts.URL+"/v1/optimize", req)
	if code != http.StatusOK {
		t.Fatalf("sync = %d", code)
	}
	solves := srv.Metrics().Solves()

	st := submitJobHTTP(t, ts.URL, "optimize", req, "")
	if st.State != relpipe.JobSucceeded || !st.Cached {
		t.Fatalf("cached submit = %+v, want succeeded+cached", st)
	}
	if !bytes.Equal(want, st.Result) {
		t.Fatalf("cached job result differs from sync")
	}
	if got := srv.Metrics().Solves(); got != solves {
		t.Fatalf("cached job ran a solve (%d -> %d)", solves, got)
	}
	// And the reverse direction: a job's solve lands in the cache for
	// the synchronous endpoint.
	req2 := relpipe.OptimizeRequest{Instance: testInstance(22), Method: "dp"}
	st2 := submitJobHTTP(t, ts.URL, "optimize", req2, "")
	st2 = waitJob(t, ts.URL, st2.ID)
	solves = srv.Metrics().Solves()
	code, got := syncBody(t, ts.URL+"/v1/optimize", req2)
	if code != http.StatusOK || !bytes.Equal(got, st2.Result) {
		t.Fatalf("sync after job: code %d, body mismatch %v", code, !bytes.Equal(got, st2.Result))
	}
	if srv.Metrics().Solves() != solves {
		t.Fatal("sync request re-solved a job-cached key")
	}
}

// TestJobCapsReturn429WithRetryAfter: both job-store caps answer 429
// and carry a Retry-After header (the backpressure satellite).
func TestJobCapsReturn429WithRetryAfter(t *testing.T) {
	_, ts := newTestServer(t, Options{
		Workers: 1, MaxJobsPerClient: 1, MaxJobs: 2, CacheSize: -1,
	})
	// Long enough (300-stage chain, full budget, one worker) that every
	// submission below happens while the first job is still live.
	slow := relpipe.OptimizeRequest{
		Instance: hetInstance(31, 300, 12), Bounds: relpipe.Bounds{Period: 800},
		Method: "heuristic",
		Search: &relpipe.SearchParams{Restarts: 8, Budget: 200000, Seed: 1},
	}
	first := submitJobHTTP(t, ts.URL, "optimize", slow, "capped")

	raw, _ := json.Marshal(slow)
	body, _ := json.Marshal(relpipe.JobSubmitRequest{Kind: "optimize", Request: raw, Client: "capped"})
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("per-client cap = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("per-client-cap 429 missing Retry-After")
	}

	// Fill the global store with a second client, then overflow it.
	slow2 := slow
	slow2.Search = &relpipe.SearchParams{Restarts: 8, Budget: 200000, Seed: 2}
	second := submitJobHTTP(t, ts.URL, "optimize", slow2, "other")
	slow3 := slow
	slow3.Search = &relpipe.SearchParams{Restarts: 8, Budget: 200000, Seed: 3}
	raw3, _ := json.Marshal(slow3)
	body3, _ := json.Marshal(relpipe.JobSubmitRequest{Kind: "optimize", Request: raw3, Client: "third"})
	resp, err = http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body3))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("store cap = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("store-cap 429 missing Retry-After")
	}
	// Cancel the queued second job (it never got a pool slot) so test
	// cleanup doesn't wait out its full solve.
	creq, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+second.ID, nil)
	if cresp, err := http.DefaultClient.Do(creq); err == nil {
		cresp.Body.Close()
	}
	// Sanity: the first job still completes (jobs wait for pool slots).
	st := waitJob(t, ts.URL, first.ID)
	if st.State != relpipe.JobSucceeded {
		t.Fatalf("first job = %s", st.State)
	}
}

// TestJobBatchKind: a whole batch document runs as one job with
// per-item progress and an ordered BatchResponse result.
func TestJobBatchKind(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	mkJob := func(seed uint64) relpipe.BatchJob {
		b, _ := json.Marshal(relpipe.OptimizeRequest{Instance: testInstance(seed), Method: "dp"})
		return relpipe.BatchJob{Kind: "optimize", Request: b}
	}
	batch := relpipe.BatchRequest{Jobs: []relpipe.BatchJob{mkJob(41), mkJob(42), mkJob(43)}}
	st := submitJobHTTP(t, ts.URL, "batch", batch, "")
	st = waitJob(t, ts.URL, st.ID)
	if st.State != relpipe.JobSucceeded {
		t.Fatalf("batch job = %s: %s", st.State, st.Result)
	}
	if st.Progress.Done != 3 || st.Progress.Total != 3 {
		t.Fatalf("batch progress = %+v, want 3/3", st.Progress)
	}
	var br relpipe.BatchResponse
	if err := json.Unmarshal(st.Result, &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Results) != 3 {
		t.Fatalf("batch results = %d", len(br.Results))
	}
	for i, r := range br.Results {
		if r.Status != http.StatusOK {
			t.Fatalf("batch item %d status = %d: %s", i, r.Status, r.Body)
		}
	}
}

// TestJobServerCloseDrains: Server.Close returns only after in-flight
// jobs reached a terminal state, and their statuses stay queryable
// (the service-level drain contract behind cmd/serve's -jobs-dump).
func TestJobServerCloseDrains(t *testing.T) {
	srv := NewServer(Options{Workers: 1, CacheSize: -1})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	req := relpipe.OptimizeRequest{
		Instance: hetInstance(51, 60, 10), Bounds: relpipe.Bounds{Period: 200},
		Method: "heuristic",
		Search: &relpipe.SearchParams{Restarts: 6, Budget: 20000, Seed: 1},
	}
	st := submitJobHTTP(t, ts.URL, "optimize", req, "")

	srv.Close()

	j, ok := srv.Jobs().Get(st.ID)
	if !ok {
		t.Fatal("job evicted during shutdown")
	}
	got := j.Status()
	if !got.State.Terminal() {
		t.Fatalf("job not drained to terminal state: %s", got.State)
	}
	if got.State != jobs.StateSucceeded {
		t.Fatalf("drained job = %s, want succeeded", got.State)
	}
	// New submissions after Close are refused with 503.
	raw, _ := json.Marshal(req)
	body, _ := json.Marshal(relpipe.JobSubmitRequest{Kind: "optimize", Request: raw})
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit after Close = %d, want 503", resp.StatusCode)
	}
}

// TestJobUnknownKindAndBadRequest: submit-time validation fails fast.
func TestJobUnknownKindAndBadRequest(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	body, _ := json.Marshal(relpipe.JobSubmitRequest{Kind: "bogus", Request: []byte(`{}`)})
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown kind = %d", resp.StatusCode)
	}
	body, _ = json.Marshal(relpipe.JobSubmitRequest{Kind: "optimize", Request: []byte(`{"nope":1}`)})
	resp, err = http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid request = %d", resp.StatusCode)
	}
	// Unknown job id → 404 on every job route.
	for _, m := range []string{http.MethodGet, http.MethodDelete} {
		req, _ := http.NewRequest(m, ts.URL+"/v1/jobs/doesnotexist", nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s missing job = %d", m, resp.StatusCode)
		}
	}
}
