package service

import (
	"encoding/json"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
)

// latencyBuckets are the upper bounds (seconds) of the solve-latency
// histogram, exponential from 1 ms to 10 s; an implicit +Inf bucket
// catches the rest.
var latencyBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// numBuckets is len(latencyBuckets); kept as a constant for the
// fixed-size atomic counter array (checked by a test).
const numBuckets = 13

// Metrics aggregates the service counters exposed at /metrics. All
// methods are safe for concurrent use; counters are monotonic, QueueDepth
// is a gauge maintained by the worker pool.
type Metrics struct {
	mu       sync.Mutex
	requests map[string]int64 // per endpoint

	cacheHits   atomic.Int64
	cacheMisses atomic.Int64
	dedupJoins  atomic.Int64
	solves      atomic.Int64
	rejected    atomic.Int64 // queue-full 429s
	queueDepth  atomic.Int64

	histCounts [numBuckets + 1]atomic.Int64
	histSumNs  atomic.Int64
	histCount  atomic.Int64
}

// NewMetrics returns an empty metrics registry.
func NewMetrics() *Metrics {
	return &Metrics{requests: make(map[string]int64)}
}

// Request counts one request against an endpoint name.
func (m *Metrics) Request(endpoint string) {
	m.mu.Lock()
	m.requests[endpoint]++
	m.mu.Unlock()
}

// CacheHit / CacheMiss count result-cache lookups.
func (m *Metrics) CacheHit()  { m.cacheHits.Add(1) }
func (m *Metrics) CacheMiss() { m.cacheMisses.Add(1) }

// DedupJoin counts a request that attached to an identical in-flight
// solve instead of starting its own.
func (m *Metrics) DedupJoin() { m.dedupJoins.Add(1) }

// Solve counts one underlying solver execution.
func (m *Metrics) Solve() { m.solves.Add(1) }

// Rejected counts a request shed with 429 because the queue was full.
func (m *Metrics) Rejected() { m.rejected.Add(1) }

// QueueEnter / QueueLeave maintain the queue-depth gauge.
func (m *Metrics) QueueEnter() { m.queueDepth.Add(1) }
func (m *Metrics) QueueLeave() { m.queueDepth.Add(-1) }

// ObserveSolve records one solve latency in the histogram.
func (m *Metrics) ObserveSolve(seconds float64) {
	i := sort.SearchFloat64s(latencyBuckets, seconds)
	m.histCounts[i].Add(1)
	m.histSumNs.Add(int64(seconds * 1e9))
	m.histCount.Add(1)
}

// Solves returns the number of underlying solver executions (tests
// assert dedup and caching through it).
func (m *Metrics) Solves() int64 { return m.solves.Load() }

// QueueDepth returns the current pending-solve gauge.
func (m *Metrics) QueueDepth() int64 { return m.queueDepth.Load() }

// MeanSolveSeconds returns the mean observed solve latency (0 before
// any solve completed). The backpressure Retry-After estimate uses it.
func (m *Metrics) MeanSolveSeconds() float64 {
	n := m.histCount.Load()
	if n == 0 {
		return 0
	}
	return float64(m.histSumNs.Load()) / 1e9 / float64(n)
}

// CacheHits returns the number of result-cache hits.
func (m *Metrics) CacheHits() int64 { return m.cacheHits.Load() }

// DedupJoins returns the number of requests that joined an in-flight
// solve.
func (m *Metrics) DedupJoins() int64 { return m.dedupJoins.Load() }

// bucketSnapshot is one cumulative histogram bucket, Prometheus-style.
type bucketSnapshot struct {
	LE    float64 `json:"le"` // upper bound in seconds
	Count int64   `json:"count"`
}

// snapshot is the JSON document served at /metrics.
type snapshot struct {
	Requests     map[string]int64 `json:"requests"`
	CacheHits    int64            `json:"cacheHits"`
	CacheMisses  int64            `json:"cacheMisses"`
	DedupJoins   int64            `json:"dedupJoins"`
	Solves       int64            `json:"solves"`
	Rejected     int64            `json:"rejected"`
	QueueDepth   int64            `json:"queueDepth"`
	SolveLatency struct {
		Count   int64            `json:"count"`
		SumSecs float64          `json:"sumSeconds"`
		Buckets []bucketSnapshot `json:"buckets"`
		Inf     int64            `json:"infCount"`
	} `json:"solveLatency"`
}

// Snapshot returns a consistent-enough copy of every counter. Counters
// are read individually (not under one lock), so a snapshot taken during
// traffic may be off by in-flight increments — fine for monitoring.
func (m *Metrics) Snapshot() any {
	var s snapshot
	s.Requests = make(map[string]int64)
	m.mu.Lock()
	for k, v := range m.requests {
		s.Requests[k] = v
	}
	m.mu.Unlock()
	s.CacheHits = m.cacheHits.Load()
	s.CacheMisses = m.cacheMisses.Load()
	s.DedupJoins = m.dedupJoins.Load()
	s.Solves = m.solves.Load()
	s.Rejected = m.rejected.Load()
	s.QueueDepth = m.queueDepth.Load()
	s.SolveLatency.Count = m.histCount.Load()
	s.SolveLatency.SumSecs = float64(m.histSumNs.Load()) / 1e9
	cum := int64(0)
	for i, le := range latencyBuckets {
		cum += m.histCounts[i].Load()
		s.SolveLatency.Buckets = append(s.SolveLatency.Buckets, bucketSnapshot{LE: le, Count: cum})
	}
	s.SolveLatency.Inf = cum + m.histCounts[len(latencyBuckets)].Load()
	return s
}

// ServeHTTP serves the snapshot as JSON (the /metrics handler).
func (m *Metrics) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(m.Snapshot())
}
