package service

import (
	"encoding/json"
	"net/http"
	"strconv"

	"relpipe/internal/fleet"
	"relpipe/internal/jobs"
	"relpipe/internal/obs"
)

// latencyBuckets are the upper bounds (seconds) of the latency
// histograms, exponential from 1 ms to 10 s; an implicit +Inf bucket
// catches the rest. They equal obs.DefBuckets (checked by a test) — the
// service predates the registry and keeps its own name for the JSON
// snapshot.
var latencyBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// batchSizeBuckets span plausible solve-batch populations: most
// batches are a handful of coalesced requests, but a thundering herd
// against one instance can reach the queue bound.
var batchSizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128}

// fleetDriftBuckets span the reliability-gap scale: near-1
// reliabilities make drifts tiny, so the buckets are log-spaced from
// 1e-12 to 1 (an implicit +Inf bucket catches a full outage's gap).
var fleetDriftBuckets = []float64{
	1e-12, 1e-10, 1e-8, 1e-6, 1e-4, 1e-3, 0.01, 0.1, 0.5, 1,
}

// Metrics aggregates the service counters. It is a thin facade over an
// obs.Registry: the named methods the server and pool call (Request,
// CacheHit, ObserveSolve, ...) update registry instruments, the registry
// renders the Prometheus exposition at /metrics, and Snapshot/ServeHTTP
// keep serving the pre-registry JSON document at /metrics.json. All
// methods are safe for concurrent use.
type Metrics struct {
	reg *obs.Registry

	requests     *obs.CounterVec   // relpipe_requests_total{endpoint}
	httpRequests *obs.CounterVec   // relpipe_http_requests_total{endpoint,code}
	httpLatency  *obs.HistogramVec // relpipe_http_request_duration_seconds{endpoint}
	cacheHits    obs.Counter
	cacheMisses  obs.Counter
	dedupJoins   obs.Counter
	solves       obs.Counter
	rejected     obs.Counter
	queueDepth   obs.Gauge
	solveLatency obs.Histogram     // relpipe_solve_duration_seconds
	stageLatency *obs.HistogramVec // relpipe_solver_stage_duration_seconds{stage}
	stageUnits   *obs.CounterVec   // relpipe_solver_stage_units_total{stage}

	batchTablesBuilt obs.Counter   // relpipe_solve_batch_tables_built_total
	batchCoalesced   obs.Counter   // relpipe_solve_batch_coalesced_total
	batchSize        obs.Histogram // relpipe_solve_batch_size

	fleetDecisions *obs.CounterVec // relpipe_fleet_decisions_total{kind}
	fleetDrift     obs.Histogram   // relpipe_fleet_drift
	fleetTick      obs.Histogram   // relpipe_fleet_tick_duration_seconds

	clusterForwards       *obs.CounterVec   // relpipe_cluster_forwards_total{peer}
	clusterForwardErrors  *obs.CounterVec   // relpipe_cluster_forward_errors_total{peer}
	clusterFallbacks      *obs.CounterVec   // relpipe_cluster_fallbacks_total{peer}
	clusterForwardLatency *obs.HistogramVec // relpipe_cluster_forward_duration_seconds{peer}
}

// NewMetrics returns a metrics registry with every service instrument
// registered.
func NewMetrics() *Metrics {
	reg := obs.NewRegistry()
	return &Metrics{
		reg: reg,
		requests: reg.NewCounterVec("relpipe_requests_total",
			"Logical solve requests by endpoint (batch items count individually).", "endpoint"),
		httpRequests: reg.NewCounterVec("relpipe_http_requests_total",
			"HTTP requests by endpoint and status code.", "endpoint", "code"),
		httpLatency: reg.NewHistogramVec("relpipe_http_request_duration_seconds",
			"HTTP request latency by endpoint.", latencyBuckets, "endpoint"),
		cacheHits: reg.NewCounter("relpipe_cache_hits_total",
			"Result-cache hits."),
		cacheMisses: reg.NewCounter("relpipe_cache_misses_total",
			"Result-cache misses."),
		dedupJoins: reg.NewCounter("relpipe_dedup_joins_total",
			"Requests that attached to an identical in-flight solve."),
		solves: reg.NewCounter("relpipe_solves_total",
			"Underlying solver executions."),
		rejected: reg.NewCounter("relpipe_rejected_total",
			"Requests shed with 429 because the worker queue was full."),
		queueDepth: reg.NewGauge("relpipe_queue_depth",
			"Solves waiting for a worker."),
		solveLatency: reg.NewHistogram("relpipe_solve_duration_seconds",
			"Solver execution latency.", latencyBuckets),
		stageLatency: reg.NewHistogramVec("relpipe_solver_stage_duration_seconds",
			"Solver stage latency (dp.table, search.anneal, sim.batch, ...).", latencyBuckets, "stage"),
		stageUnits: reg.NewCounterVec("relpipe_solver_stage_units_total",
			"Work units completed per solver stage (restarts, replications, table cells).", "stage"),
		batchTablesBuilt: reg.NewCounter("relpipe_solve_batch_tables_built_total",
			"Heuristic partition-table builds shared through the solve batcher."),
		batchCoalesced: reg.NewCounter("relpipe_solve_batch_coalesced_total",
			"Requests that joined an existing same-instance solve batch."),
		batchSize: reg.NewHistogram("relpipe_solve_batch_size",
			"Members per drained solve batch (1 = nothing coalesced).", batchSizeBuckets),
		// The fleet decision counter is labelled by decision kind — a
		// small fixed vocabulary (internal/fleet's DecisionKind consts),
		// never request content.
		fleetDecisions: reg.NewCounterVec("relpipe_fleet_decisions_total",
			"Fleet controller decisions by kind (proc-dead, drift, remap-submitted, remap-suppressed, ...).", "kind"),
		fleetDrift: reg.NewHistogram("relpipe_fleet_drift",
			"Reliability gap (floor - reliability) observed on fleet drift/down decisions.", fleetDriftBuckets),
		fleetTick: reg.NewHistogram("relpipe_fleet_tick_duration_seconds",
			"Fleet control-loop tick latency.", latencyBuckets),
		// The cluster families are label-parameterized by peer base URL —
		// bounded by the static peer list, never by request content. They
		// stay empty (HELP/TYPE only) on single-node servers.
		clusterForwards: reg.NewCounterVec("relpipe_cluster_forwards_total",
			"Requests forwarded to their consistent-hash owner node.", "peer"),
		clusterForwardErrors: reg.NewCounterVec("relpipe_cluster_forward_errors_total",
			"Forward hops that found the owner unreachable (transport error or 502/503).", "peer"),
		clusterFallbacks: reg.NewCounterVec("relpipe_cluster_fallbacks_total",
			"Requests solved locally because their owner node was unreachable.", "peer"),
		clusterForwardLatency: reg.NewHistogramVec("relpipe_cluster_forward_duration_seconds",
			"Forward-hop round-trip latency by owner node.", latencyBuckets, "peer"),
	}
}

// Registry exposes the underlying obs registry (the /metrics handler
// and extra instrument registration).
func (m *Metrics) Registry() *obs.Registry { return m.reg }

// Request counts one request against an endpoint name.
func (m *Metrics) Request(endpoint string) { m.requests.With(endpoint).Inc() }

// HTTPRequest records one finished HTTP exchange (the trace middleware
// calls it with the final status code and wall-clock latency).
func (m *Metrics) HTTPRequest(endpoint string, code int, seconds float64) {
	m.httpRequests.With(endpoint, strconv.Itoa(code)).Inc()
	m.httpLatency.With(endpoint).Observe(seconds)
}

// CacheHit / CacheMiss count result-cache lookups.
func (m *Metrics) CacheHit()  { m.cacheHits.Inc() }
func (m *Metrics) CacheMiss() { m.cacheMisses.Inc() }

// DedupJoin counts a request that attached to an identical in-flight
// solve instead of starting its own.
func (m *Metrics) DedupJoin() { m.dedupJoins.Inc() }

// Solve counts one underlying solver execution.
func (m *Metrics) Solve() { m.solves.Inc() }

// Rejected counts a request shed with 429 because the queue was full.
func (m *Metrics) Rejected() { m.rejected.Inc() }

// QueueEnter / QueueLeave maintain the queue-depth gauge.
func (m *Metrics) QueueEnter() { m.queueDepth.Inc() }
func (m *Metrics) QueueLeave() { m.queueDepth.Dec() }

// ObserveSolve records one solve latency in the histogram.
func (m *Metrics) ObserveSolve(seconds float64) { m.solveLatency.Observe(seconds) }

// StageObserver returns the hook that turns solver stage events
// (obs.Stage calls inside core, search, dp, sim, adapt, par) into the
// per-stage latency histogram and unit counters.
func (m *Metrics) StageObserver() obs.StageObserver {
	return func(e obs.StageEvent) {
		m.stageLatency.With(e.Name).Observe(e.Duration.Seconds())
		if e.Units > 0 {
			m.stageUnits.With(e.Name).Add(float64(e.Units))
		}
	}
}

// TableBuilt counts one shared heuristic-table construction performed
// inside a solve batch.
func (m *Metrics) TableBuilt() { m.batchTablesBuilt.Inc() }

// BatchCoalesce counts a request that joined an existing same-instance
// solve batch instead of opening one.
func (m *Metrics) BatchCoalesce() { m.batchCoalesced.Inc() }

// BatchSize records the member count of one drained solve batch.
func (m *Metrics) BatchSize(members float64) { m.batchSize.Observe(members) }

// TablesBuilt returns the shared table builds (tests assert the
// one-build-per-batch contract through it).
func (m *Metrics) TablesBuilt() int64 { return int64(m.batchTablesBuilt.Value()) }

// BatchCoalesced returns the requests that joined an existing batch.
func (m *Metrics) BatchCoalesced() int64 { return int64(m.batchCoalesced.Value()) }

// ClusterForward records one forward hop to a peer (however it ended)
// with its round-trip latency.
func (m *Metrics) ClusterForward(peer string, seconds float64) {
	m.clusterForwards.With(peer).Inc()
	m.clusterForwardLatency.With(peer).Observe(seconds)
}

// ClusterForwardError counts a forward hop that found the peer
// unreachable.
func (m *Metrics) ClusterForwardError(peer string) { m.clusterForwardErrors.With(peer).Inc() }

// ClusterFallback counts a request solved locally because its owner was
// unreachable — the graceful-degradation counter the peer-failure tests
// and the e2e kill-one-node assertion watch.
func (m *Metrics) ClusterFallback(peer string) { m.clusterFallbacks.With(peer).Inc() }

// ClusterFallbacks returns the local-solve fallbacks recorded against a
// peer (tests assert graceful degradation through it).
func (m *Metrics) ClusterFallbacks(peer string) int64 {
	var total float64
	m.clusterFallbacks.Each(func(labelValues []string, value float64) {
		if labelValues[0] == peer {
			total += value
		}
	})
	return int64(total)
}

// RegisterClusterStats exports the membership gauge once the server
// joins a cluster.
func (m *Metrics) RegisterClusterStats(c interface{ Peers() []string }) {
	m.reg.NewGaugeFunc("relpipe_cluster_peers",
		"Cluster members (self included) in the current ring.", nil, nil,
		func() float64 { return float64(len(c.Peers())) })
}

// RegisterCacheStats exports the result cache's size and evictions.
func (m *Metrics) RegisterCacheStats(c *Cache) {
	m.reg.NewGaugeFunc("relpipe_cache_entries",
		"Result-cache entries.", nil, nil, func() float64 { return float64(c.Len()) })
	m.reg.NewCounterFunc("relpipe_cache_evictions_total",
		"Result-cache LRU evictions.", nil, nil, func() float64 { return float64(c.Evictions()) })
}

// RegisterJobStats exports the async job engine's lifecycle gauges and
// counters.
func (m *Metrics) RegisterJobStats(e *jobs.Engine) {
	for _, st := range []string{"queued", "running", "terminal"} {
		m.reg.NewGaugeFunc("relpipe_jobs",
			"Stored async jobs by lifecycle state.", []string{"state"}, []string{st},
			func() float64 {
				s := e.Stats()
				switch st {
				case "queued":
					return float64(s.Queued)
				case "running":
					return float64(s.Running)
				default:
					return float64(s.Terminal)
				}
			})
	}
	m.reg.NewGaugeFunc("relpipe_job_subscribers",
		"Open SSE event-stream subscriptions.", nil, nil,
		func() float64 { return float64(e.Stats().Subscribers) })
	m.reg.NewCounterFunc("relpipe_jobs_submitted_total",
		"Async jobs admitted.", nil, nil,
		func() float64 { return float64(e.Stats().Submitted) })
	m.reg.NewCounterFunc("relpipe_jobs_evicted_total",
		"Async jobs evicted from the store (capacity or TTL).", nil, nil,
		func() float64 { return float64(e.Stats().Evicted) })
}

// FleetDecision records one fleet controller decision: the per-kind
// counter, plus the drift histogram on drift/down decisions. Called
// from the controller's OnDecision hook (its lock held — counter
// increments only).
func (m *Metrics) FleetDecision(d fleet.Decision) {
	m.fleetDecisions.With(string(d.Kind)).Inc()
	if d.Kind == fleet.DecisionDrift || d.Kind == fleet.DecisionDown {
		m.fleetDrift.Observe(d.Drift)
	}
}

// FleetTick records one control-loop tick latency.
func (m *Metrics) FleetTick(seconds float64) { m.fleetTick.Observe(seconds) }

// RegisterFleetStats exports the fleet controller's deployment gauge
// and remap lifecycle counters.
func (m *Metrics) RegisterFleetStats(c *fleet.Controller) {
	m.reg.NewGaugeFunc("relpipe_fleet_deployments",
		"Deployments registered with the fleet controller.", nil, nil,
		func() float64 { return float64(c.Stats().Deployments) })
	m.reg.NewCounterFunc("relpipe_fleet_remaps_total",
		"Autonomous remap jobs submitted by the fleet controller.", nil, nil,
		func() float64 { return float64(c.Stats().Remaps) })
	m.reg.NewCounterFunc("relpipe_fleet_remaps_adopted_total",
		"Autonomous remaps whose result was adopted.", nil, nil,
		func() float64 { return float64(c.Stats().Adopted) })
	m.reg.NewCounterFunc("relpipe_fleet_remaps_suppressed_total",
		"Remap trigger episodes suppressed by cooldown or circuit breaker.", nil, nil,
		func() float64 { return float64(c.Stats().Suppressed) })
	m.reg.NewCounterFunc("relpipe_fleet_remaps_failed_total",
		"Autonomous remaps that failed (admission, solver error or unusable result).", nil, nil,
		func() float64 { return float64(c.Stats().Failed) })
}

// RegisterTraceStats exports the trace recorder's occupancy.
func (m *Metrics) RegisterTraceStats(rec *obs.Recorder) {
	m.reg.NewGaugeFunc("relpipe_traces_stored",
		"Traces currently held by the bounded recorder.", nil, nil,
		func() float64 { stored, _ := rec.Stats(); return float64(stored) })
	m.reg.NewCounterFunc("relpipe_traces_recorded_total",
		"Traces ever recorded (recorded - stored = evicted).", nil, nil,
		func() float64 { _, recorded := rec.Stats(); return float64(recorded) })
}

// Solves returns the number of underlying solver executions (tests
// assert dedup and caching through it).
func (m *Metrics) Solves() int64 { return int64(m.solves.Value()) }

// QueueDepth returns the current pending-solve gauge.
func (m *Metrics) QueueDepth() int64 { return int64(m.queueDepth.Value()) }

// MeanSolveSeconds returns the mean observed solve latency (0 before
// any solve completed). The backpressure Retry-After estimate uses it.
func (m *Metrics) MeanSolveSeconds() float64 {
	s := m.solveLatency.Snapshot()
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// CacheHits returns the number of result-cache hits.
func (m *Metrics) CacheHits() int64 { return int64(m.cacheHits.Value()) }

// DedupJoins returns the number of requests that joined an in-flight
// solve.
func (m *Metrics) DedupJoins() int64 { return int64(m.dedupJoins.Value()) }

// bucketSnapshot is one cumulative histogram bucket, Prometheus-style.
type bucketSnapshot struct {
	LE    float64 `json:"le"` // upper bound in seconds
	Count int64   `json:"count"`
}

// snapshot is the JSON document served at /metrics.json (the original
// /metrics format, preserved for existing scrapers).
type snapshot struct {
	Requests     map[string]int64 `json:"requests"`
	CacheHits    int64            `json:"cacheHits"`
	CacheMisses  int64            `json:"cacheMisses"`
	DedupJoins   int64            `json:"dedupJoins"`
	Solves       int64            `json:"solves"`
	Rejected     int64            `json:"rejected"`
	QueueDepth   int64            `json:"queueDepth"`
	SolveLatency struct {
		Count   int64            `json:"count"`
		SumSecs float64          `json:"sumSeconds"`
		Buckets []bucketSnapshot `json:"buckets"`
		Inf     int64            `json:"infCount"`
	} `json:"solveLatency"`
}

// Snapshot returns a copy of every counter. The histogram portion is
// one consistent snapshot (buckets, sum and count read under one lock);
// the scalar counters are read individually, so a snapshot taken during
// traffic may be off by in-flight increments — fine for monitoring.
func (m *Metrics) Snapshot() any {
	var s snapshot
	s.Requests = make(map[string]int64)
	m.requests.Each(func(labelValues []string, value float64) {
		s.Requests[labelValues[0]] = int64(value)
	})
	s.CacheHits = m.CacheHits()
	s.CacheMisses = int64(m.cacheMisses.Value())
	s.DedupJoins = m.DedupJoins()
	s.Solves = m.Solves()
	s.Rejected = int64(m.rejected.Value())
	s.QueueDepth = m.QueueDepth()
	h := m.solveLatency.Snapshot()
	s.SolveLatency.Count = int64(h.Count)
	s.SolveLatency.SumSecs = h.Sum
	for i, le := range h.UpperBounds {
		s.SolveLatency.Buckets = append(s.SolveLatency.Buckets,
			bucketSnapshot{LE: le, Count: int64(h.Buckets[i])})
	}
	s.SolveLatency.Inf = int64(h.Count)
	return s
}

// ServeHTTP serves the snapshot as JSON (the /metrics.json handler).
func (m *Metrics) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(m.Snapshot())
}
