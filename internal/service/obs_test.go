package service

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"relpipe"
	"relpipe/internal/obs"
)

// getBody GETs url and returns (status, body).
func getBody(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return resp.StatusCode, sb.String()
}

func TestPrometheusEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	postJSON(t, ts.URL+"/v1/optimize", relpipe.OptimizeRequest{Instance: testInstance(21), Method: "dp"}, nil)
	postJSON(t, ts.URL+"/v1/optimize", relpipe.OptimizeRequest{Instance: testInstance(21), Method: "dp"}, nil)

	code, body := getBody(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("GET /metrics = %d", code)
	}
	for _, want := range []string{
		"# TYPE relpipe_http_requests_total counter",
		`relpipe_http_requests_total{endpoint="/v1/optimize",code="200"} 2`,
		"# TYPE relpipe_http_request_duration_seconds histogram",
		`relpipe_http_request_duration_seconds_bucket{endpoint="/v1/optimize",le="+Inf"} 2`,
		`relpipe_http_request_duration_seconds_count{endpoint="/v1/optimize"} 2`,
		"# TYPE relpipe_solves_total counter",
		"relpipe_solves_total 1",
		"relpipe_cache_hits_total 1",
		"relpipe_cache_misses_total 1",
		"relpipe_cache_entries 1",
		"# TYPE relpipe_jobs gauge",
		`relpipe_jobs{state="queued"} 0`,
		`relpipe_jobs{state="running"} 0`,
		`relpipe_jobs{state="terminal"} 0`,
		"relpipe_queue_depth 0",
		"# TYPE relpipe_solver_stage_duration_seconds histogram",
		`relpipe_solver_stage_duration_seconds_count{stage="solve.dp"} 1`,
		"relpipe_traces_recorded_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// The JSON snapshot must still be served at /metrics.json.
	jcode, jbody := getBody(t, ts.URL+"/metrics.json")
	if jcode != http.StatusOK || !strings.HasPrefix(strings.TrimSpace(jbody), "{") {
		t.Fatalf("GET /metrics.json = %d %q", jcode, jbody[:min(len(jbody), 60)])
	}
}

func TestTraceHeaderAndDebugTraces(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	in := testInstance(22)
	b, err := json.Marshal(relpipe.OptimizeRequest{Instance: in, Method: "dp"})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/optimize", "application/json", strings.NewReader(string(b)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	tid := resp.Header.Get(relpipe.TraceHeader)
	if tid == "" {
		t.Fatal("/v1/optimize response missing X-Trace-Id")
	}

	code, body := getBody(t, ts.URL+"/debug/traces?id="+tid)
	if code != http.StatusOK {
		t.Fatalf("GET /debug/traces?id= = %d", code)
	}
	var doc struct {
		Traces []obs.Trace `json:"traces"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Traces) != 1 || doc.Traces[0].TraceID != tid {
		t.Fatalf("traces = %+v", doc.Traces)
	}
	tr := doc.Traces[0]
	if tr.Root != "POST /v1/optimize" {
		t.Fatalf("root span = %q", tr.Root)
	}
	names := map[string]bool{}
	for _, sp := range tr.Spans {
		names[sp.Name] = true
		if sp.TraceID != tid {
			t.Fatalf("span %q carries trace %q, want %q", sp.Name, sp.TraceID, tid)
		}
		if sp.End.Before(sp.Start) {
			t.Fatalf("span %q ends before it starts", sp.Name)
		}
	}
	for _, want := range []string{"POST /v1/optimize", "cache", "queue.wait", "solve", "marshal", "solve.dp"} {
		if !names[want] {
			t.Errorf("trace missing span %q (have %v)", want, tr.Spans)
		}
	}

	// Unknown trace IDs are 404; the bare listing includes our trace.
	if code, _ := getBody(t, ts.URL+"/debug/traces?id=deadbeef"); code != http.StatusNotFound {
		t.Fatalf("unknown trace id = %d, want 404", code)
	}
	code, body = getBody(t, ts.URL+"/debug/traces")
	if code != http.StatusOK || !strings.Contains(body, tid) {
		t.Fatalf("GET /debug/traces = %d, listing contains trace: %v", code, strings.Contains(body, tid))
	}
}

func TestTraceDisabled(t *testing.T) {
	_, ts := newTestServer(t, Options{TraceCapacity: -1})
	code := postJSON(t, ts.URL+"/v1/optimize", relpipe.OptimizeRequest{Instance: testInstance(23), Method: "dp"}, nil)
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	code, body := getBody(t, ts.URL+"/debug/traces")
	if code != http.StatusOK || !strings.Contains(body, `"traces":[]`) {
		t.Fatalf("disabled recorder: %d %q", code, body)
	}
}

func TestAsyncJobCarriesTraceID(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	req := relpipe.OptimizeRequest{Instance: testInstance(24), Method: "dp"}
	raw, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(relpipe.JobSubmitRequest{Kind: "optimize", Request: raw})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(string(b)))
	if err != nil {
		t.Fatal(err)
	}
	var st relpipe.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d", resp.StatusCode)
	}
	if st.TraceID == "" {
		t.Fatal("job status missing traceId")
	}
	// Wait for the job to finish, then its trace must be recorded under
	// the advertised ID with the job root span.
	deadline := time.Now().Add(5 * time.Second)
	for {
		code, body := getBody(t, ts.URL+"/v1/jobs/"+st.ID)
		if code != http.StatusOK {
			t.Fatalf("job status = %d", code)
		}
		var cur relpipe.JobStatus
		if err := json.Unmarshal([]byte(body), &cur); err != nil {
			t.Fatal(err)
		}
		if cur.State.Terminal() {
			if cur.State != relpipe.JobSucceeded {
				t.Fatalf("job state = %q", cur.State)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job did not finish in time")
		}
		time.Sleep(5 * time.Millisecond)
	}
	code, body := getBody(t, ts.URL+"/debug/traces?id="+st.TraceID)
	if code != http.StatusOK {
		t.Fatalf("job trace lookup = %d", code)
	}
	if !strings.Contains(body, `"job optimize"`) {
		t.Fatalf("job trace missing root span: %s", body)
	}
}

func TestPprofDisabledByDefault(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	for _, p := range []string{"/debug/pprof/", "/debug/pprof/heap", "/debug/pprof/profile"} {
		code, _ := getBody(t, ts.URL+p)
		if code != http.StatusNotFound {
			t.Errorf("GET %s = %d, want 404 with pprof disabled", p, code)
		}
	}
}

func TestPprofEnabled(t *testing.T) {
	_, ts := newTestServer(t, Options{EnablePprof: true})
	code, body := getBody(t, ts.URL+"/debug/pprof/cmdline")
	if code != http.StatusOK {
		t.Fatalf("GET /debug/pprof/cmdline = %d", code)
	}
	_ = body
}

func TestEndpointLabelBoundsCardinality(t *testing.T) {
	cases := map[string]string{
		"/v1/optimize":                   "/v1/optimize",
		"/v1/jobs":                       "/v1/jobs",
		"/v1/jobs/abc123":                "/v1/jobs",
		"/v1/jobs/abc/events":            "/v1/jobs",
		"/v1/fleet/deployments":          "/v1/fleet",
		"/v1/fleet/deployments/x/events": "/v1/fleet",
		"/healthz":                       "/healthz",
		"/readyz":                        "/readyz",
		"/metrics":                       "/metrics",
		"/metrics.json":                  "/metrics.json",
		"/debug/traces":                  "/debug/traces",
		"/debug/pprof/heap":              "/debug/pprof",
		"/no/such/path":                  "other",
		"/v1/unknown":                    "other",
	}
	for path, want := range cases {
		if got := endpointLabel(path); got != want {
			t.Errorf("endpointLabel(%q) = %q, want %q", path, got, want)
		}
	}
}

// TestTraceRecorderBound exercises eviction through the service: with a
// capacity-2 recorder, three requests leave exactly the two newest
// traces stored.
func TestTraceRecorderBound(t *testing.T) {
	_, ts := newTestServer(t, Options{TraceCapacity: 2})
	for i := 0; i < 3; i++ {
		in := testInstance(uint64(30 + i))
		code := postJSON(t, ts.URL+"/v1/optimize", relpipe.OptimizeRequest{Instance: in, Method: "dp"}, nil)
		if code != http.StatusOK {
			t.Fatalf("request %d status = %d", i, code)
		}
	}
	code, body := getBody(t, ts.URL+"/debug/traces")
	if code != http.StatusOK {
		t.Fatalf("GET /debug/traces = %d", code)
	}
	var doc struct {
		Traces []obs.Trace `json:"traces"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Traces) != 2 {
		t.Fatalf("stored traces = %d, want 2", len(doc.Traces))
	}
	if !doc.Traces[0].Start.After(doc.Traces[1].Start) && !doc.Traces[0].Start.Equal(doc.Traces[1].Start) {
		t.Fatal("traces not newest-first")
	}
}

// TestDedupWaitSpan drives two concurrent identical requests and checks
// the follower's trace records the dedup.wait span.
func TestDedupWaitSpan(t *testing.T) {
	s, _ := newTestServer(t, Options{Workers: 1})
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	slow := func(body []byte, _ execOpts) (string, solveFunc, error) {
		return "k", func(solveCtx) (any, error) {
			select {
			case started <- struct{}{}:
			default:
			}
			<-release
			return map[string]int{"x": 1}, nil
		}, nil
	}
	leaderDone := make(chan outcome, 1)
	followerDone := make(chan outcome, 1)
	lctx, _ := s.recorder.StartTrace(t.Context(), "leader")
	fctx, froot := s.recorder.StartTrace(t.Context(), "follower")
	go func() { leaderDone <- s.process(lctx, "slow", slow, nil) }()
	<-started
	go func() { followerDone <- s.process(fctx, "slow", slow, nil) }()
	// Give the follower time to join the flight, then release.
	time.Sleep(20 * time.Millisecond)
	close(release)
	if out := <-leaderDone; out.status != http.StatusOK {
		t.Fatalf("leader status = %d", out.status)
	}
	if out := <-followerDone; out.status != http.StatusOK {
		t.Fatalf("follower status = %d", out.status)
	}
	fid := obs.TraceIDFrom(fctx)
	froot.End()
	tr, ok := s.recorder.Find(fid)
	if !ok {
		t.Fatal("follower trace not recorded")
	}
	var sawDedup bool
	for _, sp := range tr.Spans {
		if sp.Name == "dedup.wait" {
			sawDedup = true
		}
	}
	if !sawDedup {
		t.Fatalf("follower trace missing dedup.wait span: %+v", tr.Spans)
	}
}
