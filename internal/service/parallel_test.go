package service

import (
	"net/http"
	"runtime"
	"testing"

	"relpipe"
)

// TestSolverParallelismDefaults pins the budget rule: workers ×
// per-request parallelism ≈ GOMAXPROCS, never below 1.
func TestSolverParallelismDefaults(t *testing.T) {
	cores := runtime.GOMAXPROCS(0)
	cases := []struct {
		opts Options
		want int
	}{
		{Options{Workers: 1}, cores},
		{Options{Workers: cores}, 1},
		{Options{Workers: 4 * cores}, 1},
		{Options{Workers: 1, SolverParallelism: 3}, 3},
		{Options{Workers: 1, SolverParallelism: -1}, 1},
	}
	for _, c := range cases {
		s := NewServer(c.opts)
		if got := s.exec.parallelism; got != c.want {
			t.Errorf("opts %+v: parallelism = %d, want %d", c.opts, got, c.want)
		}
		s.Close()
	}
}

// TestSimulateReplications exercises the Monte-Carlo batch path of
// /v1/simulate: replications multiply the pooled data sets, results are
// deterministic across identical requests, and the per-request
// parallelism budget never changes the aggregates.
func TestSimulateReplications(t *testing.T) {
	in := testInstance(3)
	sol, err := relpipe.Optimize(in, relpipe.Bounds{}, relpipe.DP)
	if err != nil {
		t.Fatal(err)
	}
	req := relpipe.SimulateRequest{
		Instance: in, Mapping: sol.Mapping,
		Period: sol.Eval.WorstPeriod, DataSets: 100, Seed: 5,
		InjectFailures: true, Routing: "two-hop", Replications: 4,
	}
	var batched relpipe.SimulateResponse
	run := func(opts Options) relpipe.SimulateResponse {
		t.Helper()
		_, ts := newTestServer(t, opts)
		var resp relpipe.SimulateResponse
		if code := postJSON(t, ts.URL+"/v1/simulate", req, &resp); code != http.StatusOK {
			t.Fatalf("status = %d", code)
		}
		return resp
	}
	batched = run(Options{})
	if batched.DataSets != 4*100 {
		t.Fatalf("DataSets = %d, want %d", batched.DataSets, 400)
	}
	if batched.SuccessRate < 0 || batched.SuccessRate > 1 {
		t.Fatalf("SuccessRate = %g", batched.SuccessRate)
	}
	// Same request under a different parallelism budget: identical
	// aggregates (caching is disabled to force a re-solve).
	if again := run(Options{CacheSize: -1, SolverParallelism: 8}); again != batched {
		t.Fatalf("parallelism changed the batch: %+v vs %+v", again, batched)
	}
	if again := run(Options{CacheSize: -1, SolverParallelism: -1}); again != batched {
		t.Fatalf("sequential run changed the batch: %+v vs %+v", again, batched)
	}
}

func TestSimulateReplicationsBounds(t *testing.T) {
	in := testInstance(3)
	sol, err := relpipe.Optimize(in, relpipe.Bounds{}, relpipe.DP)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Options{})
	req := func(reps int) int {
		return postJSON(t, ts.URL+"/v1/simulate", relpipe.SimulateRequest{
			Instance: in, Mapping: sol.Mapping,
			Period: sol.Eval.WorstPeriod, DataSets: 10, Replications: reps,
		}, nil)
	}
	if code := req(-2); code != http.StatusBadRequest {
		t.Fatalf("negative replications: status = %d, want 400", code)
	}
	// An absurd replication count must be rejected up front — the batch
	// allocates per-replication state before simulating, so admitting it
	// would let one request exhaust memory.
	if code := req(2_000_000_000); code != http.StatusBadRequest {
		t.Fatalf("oversized replications: status = %d, want 400", code)
	}
	if code := req(1024); code != http.StatusOK {
		t.Fatalf("limit replications: status = %d, want 200", code)
	}
}
