package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"
)

// ErrQueueFull is returned by Pool.Do when the submission queue is at
// capacity; the HTTP layer translates it to 429 + Retry-After.
var ErrQueueFull = errors.New("service: worker queue full")

// ErrPoolClosed is returned by Pool.Do after Close.
var ErrPoolClosed = errors.New("service: pool closed")

// ErrSolvePanic is returned (wrapped) by Pool.Do when the submitted
// closure panicked; the worker survives and the HTTP layer answers 500.
var ErrSolvePanic = errors.New("service: solve panicked")

// Pool is a bounded worker pool with a bounded submission queue. Workers
// execute solver closures; when the queue is full, Do fails fast instead
// of letting latency grow without bound (load shedding).
type Pool struct {
	queue   chan poolTask
	metrics *Metrics

	mu     sync.Mutex
	closed bool
	wg     sync.WaitGroup
}

type poolTask struct {
	fn  func() (any, error)
	res chan poolResult
}

type poolResult struct {
	val any
	err error
}

// NewPool starts a pool of workers (< 1 defaults to GOMAXPROCS) with a
// queue of queueSize pending tasks (< 1 defaults to 4× workers). metrics
// may be nil.
func NewPool(workers, queueSize int, metrics *Metrics) *Pool {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if queueSize < 1 {
		queueSize = 4 * workers
	}
	p := &Pool{queue: make(chan poolTask, queueSize), metrics: metrics}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for t := range p.queue {
		if p.metrics != nil {
			p.metrics.QueueLeave()
		}
		start := time.Now()
		val, err := runTask(t.fn)
		if p.metrics != nil {
			p.metrics.ObserveSolve(time.Since(start).Seconds())
		}
		t.res <- poolResult{val, err}
	}
}

// Do submits fn and waits for its result or for ctx. It returns
// ErrQueueFull immediately when the queue is at capacity. If ctx expires
// first, Do returns ctx.Err(); the task itself still runs to completion
// on its worker (solvers are not preemptible), but its result is
// discarded without blocking the worker.
func (p *Pool) Do(ctx context.Context, fn func() (any, error)) (any, error) {
	t := poolTask{fn: fn, res: make(chan poolResult, 1)}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrPoolClosed
	}
	// The gauge is raised before the enqueue attempt: a worker may pick
	// the task up (and call QueueLeave) the instant the send succeeds, and
	// raising it afterwards would let the gauge dip below zero.
	if p.metrics != nil {
		p.metrics.QueueEnter()
	}
	select {
	case p.queue <- t:
		p.mu.Unlock()
	default:
		p.mu.Unlock()
		if p.metrics != nil {
			p.metrics.QueueLeave()
		}
		return nil, ErrQueueFull
	}
	select {
	case r := <-t.res:
		return r.val, r.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// DoWait submits fn like Do but, instead of failing fast when the queue
// is full, blocks until a queue slot frees or ctx is cancelled. This is
// the async-jobs submission path: a job accepted into the (separately
// capped) job store waits for pool capacity rather than bouncing with
// 429, and a cancelled job abandons its slot wait. Like Do, if ctx
// expires after the task was enqueued, the task still runs to
// completion on its worker and only the wait is abandoned.
//
// DoWait must not be called concurrently with or after Close: the
// blocking enqueue cannot hold the pool mutex, so the caller (the jobs
// engine, which drains before the pool closes) owns that ordering.
func (p *Pool) DoWait(ctx context.Context, fn func() (any, error)) (any, error) {
	t := poolTask{fn: fn, res: make(chan poolResult, 1)}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrPoolClosed
	}
	if p.metrics != nil {
		p.metrics.QueueEnter()
	}
	p.mu.Unlock()
	select {
	case p.queue <- t:
	case <-ctx.Done():
		if p.metrics != nil {
			p.metrics.QueueLeave()
		}
		return nil, ctx.Err()
	}
	select {
	case r := <-t.res:
		return r.val, r.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// runTask runs one solver closure, converting a panic into an error so
// a buggy solver fails its one request instead of crashing the process
// (net/http's per-connection recover does not cover pool goroutines).
func runTask(fn func() (any, error)) (val any, err error) {
	defer func() {
		if r := recover(); r != nil {
			val, err = nil, fmt.Errorf("%w: %v", ErrSolvePanic, r)
		}
	}()
	return fn()
}

// Close stops accepting work and waits for queued tasks to drain and
// workers to exit (graceful shutdown).
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	close(p.queue)
	p.mu.Unlock()
	p.wg.Wait()
}
