package service

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolRunsTasks(t *testing.T) {
	p := NewPool(2, 4, nil)
	defer p.Close()
	v, err := p.Do(context.Background(), func() (any, error) { return 7, nil })
	if err != nil || v.(int) != 7 {
		t.Fatalf("Do = %v, %v", v, err)
	}
}

func TestPoolQueueBackpressure(t *testing.T) {
	m := NewMetrics()
	p := NewPool(1, 1, m)
	defer p.Close()

	block := make(chan struct{})
	defer close(block)
	running := make(chan struct{})
	// Occupy the single worker…
	go p.Do(context.Background(), func() (any, error) {
		close(running)
		<-block
		return nil, nil
	})
	<-running
	// …fill the queue slot and wait until it is actually occupied…
	go p.Do(context.Background(), func() (any, error) { return nil, nil })
	waitFor(t, func() bool { return m.QueueDepth() == 1 })
	// …then the next submission must be shed immediately.
	if _, err := p.Do(context.Background(), func() (any, error) { return nil, nil }); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
}

func TestPoolContextTimeout(t *testing.T) {
	p := NewPool(1, 4, nil)
	defer p.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	done := make(chan struct{})
	_, err := p.Do(ctx, func() (any, error) {
		defer close(done)
		time.Sleep(100 * time.Millisecond)
		return nil, nil
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	// The abandoned task still completes without blocking its worker.
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("abandoned task never completed")
	}
}

func TestPoolCloseDrainsAndRejects(t *testing.T) {
	p := NewPool(2, 8, nil)
	var ran atomic.Int64
	results := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func() {
			_, err := p.Do(context.Background(), func() (any, error) {
				time.Sleep(5 * time.Millisecond)
				ran.Add(1)
				return nil, nil
			})
			results <- err
		}()
	}
	// Give the submissions a moment to enqueue, then close.
	time.Sleep(20 * time.Millisecond)
	p.Close()
	if _, err := p.Do(context.Background(), func() (any, error) { return nil, nil }); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("Do after Close = %v, want ErrPoolClosed", err)
	}
	// Every accepted task ran to completion (drain); a submission may
	// also have been shed (queue full) or have lost the race with Close
	// on a slow machine (pool closed) — both are legal rejections.
	for i := 0; i < 8; i++ {
		if err := <-results; err != nil && !errors.Is(err, ErrQueueFull) && !errors.Is(err, ErrPoolClosed) {
			t.Fatalf("task error %v", err)
		}
	}
}

func TestPoolQueueDepthGauge(t *testing.T) {
	m := NewMetrics()
	p := NewPool(1, 4, m)
	block := make(chan struct{})
	running := make(chan struct{})
	go p.Do(context.Background(), func() (any, error) {
		close(running)
		<-block
		return nil, nil
	})
	<-running
	done := make(chan struct{})
	go func() {
		p.Do(context.Background(), func() (any, error) { return nil, nil })
		close(done)
	}()
	// One task queued behind the blocked worker.
	waitFor(t, func() bool { return m.QueueDepth() == 1 })
	close(block)
	<-done
	waitFor(t, func() bool { return m.QueueDepth() == 0 })
	p.Close()
}

func TestPoolRecoversPanickingTask(t *testing.T) {
	p := NewPool(1, 4, nil)
	defer p.Close()
	_, err := p.Do(context.Background(), func() (any, error) { panic("solver bug") })
	if !errors.Is(err, ErrSolvePanic) {
		t.Fatalf("err = %v, want ErrSolvePanic", err)
	}
	// The single worker survived the panic and keeps serving.
	v, err := p.Do(context.Background(), func() (any, error) { return 9, nil })
	if err != nil || v.(int) != 9 {
		t.Fatalf("Do after panic = %v, %v", v, err)
	}
}

func TestDoWaitBlocksInsteadOfShedding(t *testing.T) {
	p := NewPool(1, 1, nil)
	defer p.Close()
	block := make(chan struct{})
	running := make(chan struct{})
	go p.Do(context.Background(), func() (any, error) {
		close(running)
		<-block
		return nil, nil
	})
	<-running
	// Fill the 1-slot queue, so a Do would shed with ErrQueueFull...
	go p.Do(context.Background(), func() (any, error) { return nil, nil })
	waitFor(t, func() bool { return len(p.queue) == 1 })
	if _, err := p.Do(context.Background(), func() (any, error) { return nil, nil }); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("Do on full queue = %v, want ErrQueueFull", err)
	}
	// ...while DoWait blocks until a slot frees and then completes.
	done := make(chan error, 1)
	go func() {
		_, err := p.DoWait(context.Background(), func() (any, error) { return nil, nil })
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("DoWait returned early: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(block)
	if err := <-done; err != nil {
		t.Fatalf("DoWait = %v", err)
	}
}

func TestDoWaitCancelledWhileQueued(t *testing.T) {
	p := NewPool(1, 1, nil)
	defer p.Close()
	block := make(chan struct{})
	defer close(block)
	running := make(chan struct{})
	go p.Do(context.Background(), func() (any, error) {
		close(running)
		<-block
		return nil, nil
	})
	<-running
	go p.Do(context.Background(), func() (any, error) { return nil, nil })
	waitFor(t, func() bool { return len(p.queue) == 1 })
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := p.DoWait(ctx, func() (any, error) { return nil, nil })
		done <- err
	}()
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("DoWait after cancel = %v, want context.Canceled", err)
	}
}

// waitFor polls cond for up to 2 seconds.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never held")
		}
		time.Sleep(time.Millisecond)
	}
}
