package service

import (
	"net/http"
	"testing"

	"relpipe"
	"relpipe/internal/chain"
	"relpipe/internal/platform"
	"relpipe/internal/rng"
)

// hetInstance builds a heterogeneous test instance: the platforms the
// heuristic search exists for.
func hetInstance(seed uint64, n, p int) relpipe.Instance {
	r := rng.New(seed)
	return relpipe.Instance{
		Chain:    chain.PaperRandom(r, n),
		Platform: platform.PaperHeterogeneous(r, p),
	}
}

// searchParams keeps endpoint tests fast: small portfolio, small budget.
var searchParams = &relpipe.SearchParams{Restarts: 2, Budget: 300, Seed: 1}

func TestOptimizeHeuristicEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	in := hetInstance(1, 30, 10)
	var resp relpipe.OptimizeResponse
	code := postJSON(t, ts.URL+"/v1/optimize",
		relpipe.OptimizeRequest{Instance: in, Method: "heuristic", Search: searchParams}, &resp)
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if resp.Solution.Method != "heuristic" {
		t.Fatalf("method = %q", resp.Solution.Method)
	}
	if err := resp.Solution.Mapping.Validate(in.Chain, in.Platform); err != nil {
		t.Fatalf("returned mapping invalid: %v", err)
	}
}

func TestMinPeriodHeuristicEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	// Heterogeneous: auto routes to the search engine.
	in := hetInstance(2, 20, 8)
	var resp relpipe.OptimizeResponse
	code := postJSON(t, ts.URL+"/v1/minperiod",
		relpipe.MinPeriodRequest{Instance: in, MinReliability: 0.99, Search: searchParams}, &resp)
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if resp.Solution.Method != "min-period-heuristic" || resp.Solution.Eval.WorstPeriod <= 0 {
		t.Fatalf("solution = %+v", resp.Solution)
	}
	// An explicit DP request on the same platform is a solver error (400).
	code = postJSON(t, ts.URL+"/v1/minperiod",
		relpipe.MinPeriodRequest{Instance: in, Method: "dp"}, nil)
	if code != http.StatusBadRequest {
		t.Fatalf("explicit dp on het platform: status = %d, want 400", code)
	}
}

func TestMinCostHeuristicEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	in := testInstance(5)
	costs := make([]float64, in.Platform.P())
	for i := range costs {
		costs[i] = float64(i + 1)
	}
	var resp relpipe.MinCostResponse
	code := postJSON(t, ts.URL+"/v1/mincost",
		relpipe.MinCostRequest{Instance: in, Costs: costs, MinReliability: 0.99,
			Method: "heuristic", Search: searchParams}, &resp)
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if resp.Solution.TotalCost <= 0 || len(resp.Solution.Mapping.Parts) == 0 {
		t.Fatalf("solution = %+v", resp.Solution)
	}
}

// TestSearchBudgetCaps mirrors the MaxReplications guard: requests
// beyond the configured search caps are rejected up front with 400.
func TestSearchBudgetCaps(t *testing.T) {
	_, ts := newTestServer(t, Options{MaxSearchRestarts: 4, MaxSearchBudget: 1000})
	in := testInstance(6)
	for name, sp := range map[string]*relpipe.SearchParams{
		"restarts over cap": {Restarts: 5},
		"budget over cap":   {Budget: 1001},
		"negative restarts": {Restarts: -1},
		"negative budget":   {Budget: -5},
	} {
		code := postJSON(t, ts.URL+"/v1/optimize",
			relpipe.OptimizeRequest{Instance: in, Method: "heuristic", Search: sp}, nil)
		if code != http.StatusBadRequest {
			t.Fatalf("%s: status = %d, want 400", name, code)
		}
	}
	// At the cap is accepted.
	code := postJSON(t, ts.URL+"/v1/optimize",
		relpipe.OptimizeRequest{Instance: in, Method: "heuristic",
			Search: &relpipe.SearchParams{Restarts: 4, Budget: 1000, Seed: 1}}, nil)
	if code != http.StatusOK {
		t.Fatalf("at-cap request: status = %d", code)
	}
}

// TestSearchParamsEnterCacheKey: identical requests share a cache
// entry; changing only the seed must miss (different search, possibly
// different answer).
func TestSearchParamsEnterCacheKey(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	in := hetInstance(3, 25, 8)
	req := relpipe.OptimizeRequest{Instance: in, Method: "heuristic",
		Search: &relpipe.SearchParams{Restarts: 2, Budget: 300, Seed: 1}}
	postJSON(t, ts.URL+"/v1/optimize", req, nil)
	postJSON(t, ts.URL+"/v1/optimize", req, nil) // identical: cache hit
	req2 := req
	req2.Search = &relpipe.SearchParams{Restarts: 2, Budget: 300, Seed: 2}
	postJSON(t, ts.URL+"/v1/optimize", req2, nil) // new seed: miss
	if hits := s.Metrics().CacheHits(); hits != 1 {
		t.Fatalf("cache hits = %d, want 1", hits)
	}
	if solves := s.Metrics().Solves(); solves != 2 {
		t.Fatalf("solves = %d, want 2", solves)
	}
}

// TestSearchParamsIgnoredInKeyForExactMethods: exact/DP answers cannot
// depend on the search knobs, so requests differing only in an
// (ignored) search block must share one cache entry.
func TestSearchParamsIgnoredInKeyForExactMethods(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	in := testInstance(11)
	req := relpipe.OptimizeRequest{Instance: in, Method: "exact", Bounds: relpipe.Bounds{Period: 300},
		Search: &relpipe.SearchParams{Seed: 1}}
	postJSON(t, ts.URL+"/v1/optimize", req, nil)
	req.Search = &relpipe.SearchParams{Seed: 2}
	postJSON(t, ts.URL+"/v1/optimize", req, nil)
	if solves := s.Metrics().Solves(); solves != 1 {
		t.Fatalf("solves = %d, want 1 (search knobs must not fragment exact-method cache keys)", solves)
	}
	if hits := s.Metrics().CacheHits(); hits != 1 {
		t.Fatalf("cache hits = %d, want 1", hits)
	}
}

// TestHeuristicDeterministicAcrossServerParallelism pins the service
// contract that lets search results be cached: the solver parallelism
// budget never changes the answer, so two servers with different
// budgets must produce byte-identical solutions.
func TestHeuristicDeterministicAcrossServerParallelism(t *testing.T) {
	in := hetInstance(4, 30, 10)
	req := relpipe.OptimizeRequest{Instance: in, Method: "heuristic", Search: searchParams}
	var got [2]relpipe.OptimizeResponse
	for i, par := range []int{-1, 8} {
		_, ts := newTestServer(t, Options{SolverParallelism: par})
		if code := postJSON(t, ts.URL+"/v1/optimize", req, &got[i]); code != http.StatusOK {
			t.Fatalf("parallelism %d: status = %d", par, code)
		}
	}
	if got[0].Solution.Eval.LogRel != got[1].Solution.Eval.LogRel {
		t.Fatalf("solver parallelism changed the search answer: %.17g vs %.17g",
			got[0].Solution.Eval.LogRel, got[1].Solution.Eval.LogRel)
	}
}
