package service

import (
	"net/http"
	"testing"

	"relpipe"
)

// TestSimulateSeedZeroAliasesSeedOne pins the repo-wide seed
// convention at the service layer: seed 0 and seed 1 are one request
// (same behaviour as cmd/simulate and sim.RunBatch) and share one
// cache entry.
func TestSimulateSeedZeroAliasesSeedOne(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1})
	in := testInstance(9)
	sol, err := relpipe.Optimize(in, relpipe.Bounds{}, relpipe.Auto)
	if err != nil {
		t.Fatal(err)
	}
	req := relpipe.SimulateRequest{
		Instance: in, Mapping: sol.Mapping,
		Period: sol.Eval.WorstPeriod, DataSets: 50,
		Seed: 0, InjectFailures: true,
	}
	var r0 relpipe.SimulateResponse
	if code := postJSON(t, ts.URL+"/v1/simulate", req, &r0); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	req.Seed = 1
	var r1 relpipe.SimulateResponse
	if code := postJSON(t, ts.URL+"/v1/simulate", req, &r1); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if r0 != r1 {
		t.Fatalf("seed 0 response %+v differs from seed 1 %+v", r0, r1)
	}
	if m := s.Metrics().Snapshot().(snapshot); m.CacheHits != 1 {
		t.Fatalf("seed 0 and seed 1 did not share a cache entry: %+v", m)
	}
}

// TestAdaptSeedZeroAliasesSeedOne pins the same convention on
// /v1/adapt.
func TestAdaptSeedZeroAliasesSeedOne(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1})
	req := adaptReq(9)
	req.Seed = 0
	var r0 relpipe.AdaptResponse
	if code := postJSON(t, ts.URL+"/v1/adapt", req, &r0); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	req.Seed = 1
	var r1 relpipe.AdaptResponse
	if code := postJSON(t, ts.URL+"/v1/adapt", req, &r1); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if r0 != r1 {
		t.Fatalf("seed 0 response %+v differs from seed 1 %+v", r0, r1)
	}
	if m := s.Metrics().Snapshot().(snapshot); m.CacheHits != 1 {
		t.Fatalf("seed 0 and seed 1 did not share a cache entry: %+v", m)
	}
}
