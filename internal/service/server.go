package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"relpipe"
	"relpipe/internal/cluster"
	"relpipe/internal/cost"
	"relpipe/internal/fleet"
	"relpipe/internal/jobs"
	"relpipe/internal/obs"
	"relpipe/internal/progress"
	"relpipe/internal/sim"
)

// Options configures a Server. Zero values select the defaults noted on
// each field.
type Options struct {
	// Workers is the worker-pool size (default GOMAXPROCS).
	Workers int
	// QueueSize bounds pending solves before 429s (default 4×Workers).
	QueueSize int
	// CacheSize bounds the LRU result cache entries (default 1024;
	// negative disables caching).
	CacheSize int
	// RequestTimeout bounds the wait for one solve (default 30s).
	RequestTimeout time.Duration
	// MaxBodyBytes bounds request bodies (default 8 MiB).
	MaxBodyBytes int64
	// MaxBatchJobs bounds jobs per /v1/batch request (default 256).
	MaxBatchJobs int
	// MaxReplications bounds the Monte-Carlo replications one
	// /v1/simulate request may ask for (default 1024): the batch
	// allocates per-replication state up front, so an unbounded value
	// would let one small request exhaust memory.
	MaxReplications int
	// MaxSearchRestarts and MaxSearchBudget cap the heuristic-search
	// knobs one request may ask for (defaults 32 restarts, 200000
	// iterations per restart); like MaxReplications they keep a single
	// request from monopolizing a worker slot. Requests above the caps
	// get 400.
	MaxSearchRestarts int
	MaxSearchBudget   int
	// MaxJobs bounds the async job store (default 1024 jobs of every
	// state; terminal jobs are evicted oldest-first when full).
	// MaxJobsPerClient bounds one client's live jobs (default 16), and
	// JobTTL is how long terminal jobs stay queryable (default 10m).
	// See internal/jobs.
	MaxJobs          int
	MaxJobsPerClient int
	JobTTL           time.Duration
	// DisableFleet turns off the fleet controller and its /v1/fleet
	// routes (default on: the controller is idle until a deployment
	// registers, so it costs nothing unused).
	DisableFleet bool
	// DisableSolveBatch turns off the solve batcher (batcher.go), which
	// coalesces the heuristic-table construction of concurrent requests
	// against the same instance (default on). Batching never changes a
	// response — tables are bit-identical to self-built ones — so the
	// knob exists for operators isolating a problem, not for tuning.
	DisableSolveBatch bool
	// FleetTick is the fleet control-loop period (default 1s) and
	// MaxDeployments its registration cap (default 1024).
	FleetTick      time.Duration
	MaxDeployments int
	// FleetClient is the jobs-engine client id autonomous remaps are
	// submitted under (default "fleet"). The fleet shares the job store
	// and worker pool with interactive users but is capped as one
	// client of its own: a remap storm 429s against MaxJobsPerClient —
	// opening the deployment's breaker — instead of evicting or
	// starving user jobs.
	FleetClient string
	// FleetCooldown, FleetBreakerWindow and FleetMaxRemaps set the
	// default guard rails of registered deployments (defaults 1m, 10m,
	// 3); a deployment's own policy overrides them field by field.
	FleetCooldown      time.Duration
	FleetBreakerWindow time.Duration
	FleetMaxRemaps     int
	// TraceCapacity bounds the in-memory trace recorder queryable at
	// /debug/traces (default 256 most-recent traces; negative disables
	// recording — spans become no-ops, X-Trace-Id still issued).
	TraceCapacity int
	// EnablePprof mounts the net/http/pprof handlers under /debug/pprof/
	// (default off: the profiling surface stays private unless an
	// operator opts in with cmd/serve's -pprof).
	EnablePprof bool
	// Logger receives one structured line per HTTP request (endpoint,
	// status, latency, trace ID). nil disables request logging — tests
	// and embedders stay quiet by default; cmd/serve always passes one.
	Logger *slog.Logger
	// SolverParallelism is the per-request parallelism budget handed to
	// the solvers (relpipe.Options.Parallelism): how many goroutines one
	// solve may use inside its worker slot. The default,
	// max(1, GOMAXPROCS/workers), composes the two concurrency layers
	// instead of oversubscribing: workers × SolverParallelism ≈
	// GOMAXPROCS, so a loaded pool keeps every core busy with distinct
	// requests while a lone heavy solve on an idle pool still spreads
	// over spare cores when workers < GOMAXPROCS. Negative forces
	// sequential solves. Parallelism never changes a solver's answer,
	// so cache keys ignore it.
	SolverParallelism int
}

func (o Options) withDefaults() Options {
	if o.CacheSize == 0 {
		o.CacheSize = 1024
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 30 * time.Second
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 8 << 20
	}
	if o.MaxBatchJobs <= 0 {
		o.MaxBatchJobs = 256
	}
	if o.MaxReplications <= 0 {
		o.MaxReplications = 1024
	}
	if o.MaxSearchRestarts <= 0 {
		o.MaxSearchRestarts = 32
	}
	if o.MaxSearchBudget <= 0 {
		o.MaxSearchBudget = 200000
	}
	if o.TraceCapacity == 0 {
		o.TraceCapacity = 256
	}
	if o.FleetClient == "" {
		o.FleetClient = "fleet"
	}
	return o
}

// Server is the HTTP solver service. Create with NewServer, serve it as
// an http.Handler, and Close it on shutdown to drain the worker pool.
type Server struct {
	opts     Options
	pool     *Pool
	cache    *Cache
	flights  *flightGroup
	forwards *flightGroup  // collapses concurrent identical cluster forwards
	batcher  *tableBatcher // nil when Options.DisableSolveBatch
	metrics  *Metrics
	recorder *obs.Recorder
	logger   *slog.Logger
	jobs     *jobs.Engine
	fleet    *fleet.Controller // nil when Options.DisableFleet
	mux      *http.ServeMux
	workers  int
	exec     execOpts

	// clusterB is set by JoinCluster (atomically — tests join after the
	// server is already serving); nil means single-node, and backend()
	// falls through to the local path.
	clusterB atomic.Pointer[clusterBackend]

	shutdownOnce sync.Once
	shutdownC    chan struct{} // closed by BeginShutdown; ends SSE streams
}

// NewServer builds a ready-to-serve solver service.
func NewServer(opts Options) *Server {
	opts = opts.withDefaults()
	m := NewMetrics()
	s := &Server{
		opts:      opts,
		cache:     NewCache(opts.CacheSize),
		flights:   newFlightGroup(),
		forwards:  newFlightGroup(),
		metrics:   m,
		logger:    opts.Logger,
		shutdownC: make(chan struct{}),
	}
	if !opts.DisableSolveBatch {
		s.batcher = newTableBatcher(m)
	}
	if opts.TraceCapacity > 0 {
		// A nil recorder is inert (spans no-op), so a negative capacity
		// cleanly disables tracing without touching any call site.
		s.recorder = obs.NewRecorder(opts.TraceCapacity)
		m.RegisterTraceStats(s.recorder)
	}
	s.jobs = jobs.NewEngine(jobs.Options{
		MaxJobs: opts.MaxJobs, MaxPerClient: opts.MaxJobsPerClient, TTL: opts.JobTTL,
	})
	m.RegisterCacheStats(s.cache)
	m.RegisterJobStats(s.jobs)
	s.workers = opts.Workers
	if s.workers < 1 {
		s.workers = runtime.GOMAXPROCS(0)
	}
	switch {
	case opts.SolverParallelism > 0:
		s.exec.parallelism = opts.SolverParallelism
	case opts.SolverParallelism < 0:
		s.exec.parallelism = 1
	default:
		s.exec.parallelism = max(1, runtime.GOMAXPROCS(0)/s.workers)
	}
	s.exec.maxReplications = opts.MaxReplications
	s.exec.maxSearchRestarts = opts.MaxSearchRestarts
	s.exec.maxSearchBudget = opts.MaxSearchBudget
	s.pool = NewPool(s.workers, opts.QueueSize, m)
	if !opts.DisableFleet {
		s.fleet = fleet.New(fleet.Options{
			TickInterval:   opts.FleetTick,
			MaxDeployments: opts.MaxDeployments,
			Submitter:      &fleetSubmitter{s: s},
			DefaultPolicy: fleet.Policy{
				Cooldown:      opts.FleetCooldown,
				BreakerWindow: opts.FleetBreakerWindow,
				MaxRemaps:     opts.FleetMaxRemaps,
			},
			OnDecision: func(id string, d fleet.Decision) {
				m.FleetDecision(d)
			},
			OnTick: func(elapsed time.Duration, deployments, decisions int) {
				m.FleetTick(elapsed.Seconds())
			},
		})
		m.RegisterFleetStats(s.fleet)
		s.fleet.Start()
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/optimize", s.solveHandler("optimize", parseOptimize))
	mux.HandleFunc("POST /v1/evaluate", s.solveHandler("evaluate", parseEvaluate))
	mux.HandleFunc("POST /v1/minperiod", s.solveHandler("minperiod", parseMinPeriod))
	mux.HandleFunc("POST /v1/frontier", s.solveHandler("frontier", parseFrontier))
	mux.HandleFunc("POST /v1/mincost", s.solveHandler("mincost", parseMinCost))
	mux.HandleFunc("POST /v1/simulate", s.solveHandler("simulate", parseSimulate))
	mux.HandleFunc("POST /v1/adapt", s.solveHandler("adapt", parseAdapt))
	mux.HandleFunc("POST /v1/batch", s.handleBatch)
	mux.HandleFunc("POST /v1/jobs", s.handleJobSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleJobList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	if s.fleet != nil {
		mux.HandleFunc("POST /v1/fleet/deployments", s.handleFleetRegister)
		mux.HandleFunc("GET /v1/fleet/deployments", s.handleFleetList)
		mux.HandleFunc("GET /v1/fleet/deployments/{id}", s.handleFleetStatus)
		mux.HandleFunc("DELETE /v1/fleet/deployments/{id}", s.handleFleetDeregister)
		mux.HandleFunc("POST /v1/fleet/deployments/{id}/events", s.handleFleetIngest)
		mux.HandleFunc("GET /v1/fleet/deployments/{id}/events", s.handleFleetEvents)
	}
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.Handle("GET /metrics", m.Registry().Handler())
	mux.Handle("GET /metrics.json", s.metrics)
	mux.HandleFunc("GET /debug/traces", s.handleTraces)
	if opts.EnablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	s.mux = mux
	return s
}

// ServeHTTP implements http.Handler: the observability middleware
// (trace + X-Trace-Id, HTTP metrics, request log — see trace.go) around
// the route mux.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.serveObserved(w, r)
}

// Metrics exposes the server's counters (for tests and embedding).
func (s *Server) Metrics() *Metrics { return s.metrics }

// BeginShutdown signals the start of a graceful shutdown without
// waiting: SSE event streams terminate (watchers get a final status
// event), so the HTTP server's own drain isn't held open by long-lived
// watch connections. Idempotent; Close calls it implicitly.
func (s *Server) BeginShutdown() {
	s.shutdownOnce.Do(func() { close(s.shutdownC) })
}

// Close drains the service for shutdown, in dependency order: event
// streams end (BeginShutdown), the job engine stops admitting and waits
// for every in-flight job to reach a terminal state — their statuses
// stay queryable via Jobs().Snapshot — and only then the worker pool
// (which the jobs run on) drains and closes. New requests get 503.
func (s *Server) Close() {
	s.BeginShutdown()
	s.stopFleet()
	s.jobs.Close()
	s.pool.Close()
}

// stopFleet halts the fleet control loop before the job engine drains:
// a ticking controller could otherwise submit a remap into a closing
// engine. Stopped controller state stays queryable.
func (s *Server) stopFleet() {
	if s.fleet != nil {
		s.fleet.Stop()
	}
}

// CloseWithin is Close with a drain budget for the async jobs: jobs
// still live after d are cancelled (through the same context plumbing
// DELETE uses) and land as cancelled instead of pinning shutdown — so a
// supervisor's kill timeout can't outrun the terminal-status dump.
// d <= 0 behaves like Close.
func (s *Server) CloseWithin(d time.Duration) {
	s.BeginShutdown()
	s.stopFleet()
	s.jobs.CloseWithin(d)
	s.pool.Close()
}

// Jobs exposes the async job engine (for the shutdown status dump and
// tests).
func (s *Server) Jobs() *jobs.Engine { return s.jobs }

// Fleet exposes the fleet controller (nil when disabled) — tests and
// embedders drive ticks and inspect deployments through it.
func (s *Server) Fleet() *fleet.Controller { return s.fleet }

// execOpts is the execution budget handed to every solve closure: the
// solver-level parallelism one request may use inside its worker slot
// (never part of cache keys because parallelism never changes a
// solver's answer) and the per-request replication and search caps.
type execOpts struct {
	parallelism       int
	maxReplications   int
	maxSearchRestarts int
	maxSearchBudget   int
}

func (e execOpts) options() relpipe.Options {
	return relpipe.Options{Parallelism: e.parallelism}
}

// searchOptions validates a request's search knobs against the
// server's caps and folds them into the solver options. The returned
// key fragment enters the cache key: search results depend on the
// knobs (but never on parallelism).
//
// No TimeBudget is imposed: a wall-clock cap would make the result
// depend on machine load, and a truncated answer cached under the
// deterministic seed-keyed entry would poison the cache (two replicas
// would serve different mappings for the same request forever). The
// caps instead bound the worst case by iteration count — at the
// defaults, restarts × budget is the same order of work as a
// worst-case exact solve, the occupancy the service has always
// accepted; operators can lower -search-restarts/-search-budget.
func (e execOpts) searchOptions(sp *relpipe.SearchParams) (relpipe.Options, string, error) {
	o := e.options()
	if sp == nil {
		return o, "|sr=0,sb=0,ss=0", nil
	}
	if sp.Restarts < 0 || sp.Budget < 0 {
		return o, "", fmt.Errorf("search: negative restarts or budget")
	}
	if sp.Restarts > e.maxSearchRestarts {
		return o, "", fmt.Errorf("search: %d restarts exceeds limit %d", sp.Restarts, e.maxSearchRestarts)
	}
	if sp.Budget > e.maxSearchBudget {
		return o, "", fmt.Errorf("search: budget %d exceeds limit %d", sp.Budget, e.maxSearchBudget)
	}
	o.Restarts, o.Budget, o.Seed = sp.Restarts, sp.Budget, sp.Seed
	return o, fmt.Sprintf("|sr=%d,sb=%d,ss=%d", sp.Restarts, sp.Budget, sp.Seed), nil
}

// searchSensitive reports whether a method's answer can depend on the
// search knobs: the explicit heuristic, or auto (which may route
// there). Exact/DP/ILP answers never do, so their cache keys omit the
// knobs — identical solves with and without an (ignored) search block
// share one entry, the same reasoning that keeps parallelism out of
// every key.
func searchSensitive(m relpipe.Method) bool {
	return m == relpipe.Heuristic || m == relpipe.Auto
}

// parseSolveMethod is the shared method/search-knob handling of the
// optimize, minperiod and mincost parsers: default the method name to
// auto, validate the search knobs against the caps, and build the
// method's cache-key fragment (search knobs included only when the
// method is search-sensitive).
func parseSolveMethod(methodStr string, sp *relpipe.SearchParams, ex execOpts) (relpipe.Method, relpipe.Options, string, error) {
	if methodStr == "" {
		methodStr = "auto"
	}
	method, err := relpipe.ParseMethod(methodStr)
	if err != nil {
		return method, relpipe.Options{}, "", err
	}
	opts, searchKey, err := ex.searchOptions(sp)
	if err != nil {
		return method, relpipe.Options{}, "", err
	}
	if !searchSensitive(method) {
		searchKey = ""
	}
	return method, opts, "|m=" + method.String() + searchKey, nil
}

// solveCtx is the per-execution environment of one solve closure: the
// cancellation context (background on the synchronous path, the job's
// context on the async path) and an optional progress hook (nil
// synchronously; the job's Control asynchronously). Neither influences
// the solver's answer, so solve closures built from the same request
// produce bit-identical bodies on both paths.
type solveCtx struct {
	ctx      context.Context
	progress progress.Func
	// tables is the solve batch's shared heuristic-table provider (nil
	// when batching is off — see batcher.go). Like the other fields it
	// never influences an answer: provided tables are bit-identical to
	// the ones a search builds itself.
	tables func(relpipe.Instance) *relpipe.HeuristicTables
}

func (sc solveCtx) context() context.Context {
	if sc.ctx != nil {
		return sc.ctx
	}
	return context.Background()
}

// parser turns a decoded request body into a canonical cache key and a
// solve closure producing the response DTO under the given execution
// budget.
type parser func(body []byte, ex execOpts) (key string, solve solveFunc, err error)

// solveFunc produces a response DTO under a solveCtx.
type solveFunc func(sc solveCtx) (any, error)

// outcome is the materialized HTTP answer of one solve, shared verbatim
// by deduplicated and cached requests. node, when set, names the
// cluster peer that produced the body (the relpipe.NodeHeader value);
// empty means this node, filled in at write time in cluster mode.
type outcome struct {
	status int
	body   []byte
	node   string
}

// handleHealthz is pure liveness: the process is up and serving. It
// stays 200 through a graceful drain — readiness is /readyz's job —
// so an orchestrator never kills a pod for draining politely.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, `{"status":"ok"}`)
}

// handleReadyz is readiness: 200 while the server accepts new work,
// 503 {"status":"draining"} once BeginShutdown has started the drain —
// load balancers stop routing while in-flight jobs finish.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	select {
	case <-s.shutdownC:
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, `{"status":"draining"}`)
	default:
		fmt.Fprintln(w, `{"status":"ok"}`)
	}
}

// solveHandler wraps a parser with the shared parse → backend path. A
// forwarded request (another cluster node routed it here) always
// executes locally — one hop, never a loop — under the contract the
// hop's headers select: the synchronous one, or the async-job one for
// forwards that originate from a job on the entry node.
func (s *Server) solveHandler(endpoint string, parse parser) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		body, status, err := readBody(w, r, s.opts.MaxBodyBytes)
		if err != nil {
			s.metrics.Request(endpoint)
			s.writeError(w, status, err)
			return
		}
		var out outcome
		if isForwarded(r) {
			out = s.processForwarded(r.Context(), endpoint, parse, body,
				r.Header.Get(relpipe.AsyncHeader) != "")
		} else {
			out = s.process(r.Context(), endpoint, parse, body)
		}
		s.writeOutcome(w, out)
	}
}

// isForwarded reports whether another cluster node routed this request
// here (relpipe.ForwardedHeader carries the sender's base URL).
func isForwarded(r *http.Request) bool {
	return r.Header.Get(relpipe.ForwardedHeader) != ""
}

// parseRequest turns a request body into the Backend's unit of work:
// metrics, parsing, key construction, route extraction.
func (s *Server) parseRequest(endpoint string, parse parser, body []byte) (Request, error) {
	s.metrics.Request(endpoint)
	key, solve, err := parse(body, s.exec)
	if err != nil {
		return Request{}, err
	}
	return Request{
		Kind:  endpoint,
		Key:   endpoint + "|" + key,
		Route: routeKey(key),
		Body:  body,
		solve: solve,
	}, nil
}

// process runs one request (from a direct request or a batch item)
// through the active backend under the synchronous contract. ctx is the
// request context, used only for observability (the trace the
// middleware opened); cancellation deliberately does not flow into the
// solve — see localBackend.Execute.
func (s *Server) process(ctx context.Context, endpoint string, parse parser, body []byte) outcome {
	req, err := s.parseRequest(endpoint, parse, body)
	if err != nil {
		return errorOutcome(http.StatusBadRequest, err)
	}
	return s.backend().Execute(ctx, req)
}

// processForwarded runs a request another node routed here: always on
// the local backend (never re-forwarded), under the synchronous
// contract or — when the hop carries relpipe.AsyncHeader — the async
// one, where ctx (the hop's connection) is the cancellation bound: the
// origin job cancelling severs the connection and aborts the solve.
func (s *Server) processForwarded(ctx context.Context, endpoint string, parse parser, body []byte, wait bool) outcome {
	req, err := s.parseRequest(endpoint, parse, body)
	if err != nil {
		return errorOutcome(http.StatusBadRequest, err)
	}
	if wait {
		return localBackend{s}.ExecuteWait(ctx, req, nil, nil)
	}
	return localBackend{s}.Execute(ctx, req)
}

// backend returns the active dispatch seam: the cluster backend once
// JoinCluster has run, the local pool otherwise.
func (s *Server) backend() Backend {
	if cb := s.clusterB.Load(); cb != nil {
		return cb
	}
	return localBackend{s}
}

// JoinCluster switches the server into cluster mode: requests whose
// instance hashes to another node are forwarded there (local solve
// fallback when that owner is unreachable), and the job endpoints fan
// out across the peers so any node answers for any job. Responses stay
// byte-identical to single-node mode. HopTimeout defaults to the
// request timeout plus headroom so a slow-but-healthy owner is never
// misread as dead. Call after NewServer, before or while serving.
func (s *Server) JoinCluster(cfg cluster.Config) error {
	if cfg.HopTimeout <= 0 {
		cfg.HopTimeout = s.opts.RequestTimeout + 5*time.Second
	}
	cl, err := cluster.New(cfg)
	if err != nil {
		return err
	}
	s.metrics.RegisterClusterStats(cl)
	s.jobs.SetNode(cl.Self())
	s.clusterB.Store(&clusterBackend{s: s, local: localBackend{s}, cl: cl})
	return nil
}

// Cluster exposes the cluster membership (nil on single-node servers) —
// peer-set changes via SetPeers, and tests.
func (s *Server) Cluster() *cluster.Cluster {
	if cb := s.clusterB.Load(); cb != nil {
		return cb.cl
	}
	return nil
}

// solveToBytes executes one solve closure under sc, marshals the
// response DTO and caches the bytes. It is the single execution path
// shared by the synchronous endpoints and the async jobs engine, which
// is what makes an async result bit-identical to the synchronous one
// for the same request: same closure, same marshaling, same cache
// entry. A failed (or cancelled) solve caches nothing.
func (s *Server) solveToBytes(key string, solve solveFunc, sc solveCtx) ([]byte, error) {
	s.metrics.Solve()
	spanCtx, sp := obs.StartSpan(sc.context(), "solve")
	sc.ctx = spanCtx // solver stages nest under the solve span
	v, err := solve(sc)
	if err != nil {
		sp.SetAttr("error", err.Error())
		sp.End()
		return nil, err
	}
	sp.End()
	t0 := time.Now()
	b, err := json.Marshal(v)
	obs.RecordSpan(sc.ctx, "marshal", t0, time.Now(), nil)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", errEncodeResponse, err)
	}
	s.cache.Put(key, b)
	return b, nil
}

// handleBatch fans the jobs across the worker pool (bounded by the pool
// itself plus a per-batch fan-out cap) and answers with one result per
// job in request order. Jobs shed with 429 can be retried individually.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	s.metrics.Request("batch")
	body, status, err := readBody(w, r, s.opts.MaxBodyBytes)
	if err != nil {
		s.writeError(w, status, err)
		return
	}
	var req relpipe.BatchRequest
	if err := unmarshalStrict(body, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(req.Jobs) == 0 {
		s.writeError(w, http.StatusBadRequest, errors.New("batch: no jobs"))
		return
	}
	if len(req.Jobs) > s.opts.MaxBatchJobs {
		s.writeError(w, http.StatusBadRequest,
			fmt.Errorf("batch: %d jobs exceeds limit %d", len(req.Jobs), s.opts.MaxBatchJobs))
		return
	}

	ctx := r.Context()
	results := s.runBatchItems(req.Jobs, func(kind string, parse parser, body []byte) outcome {
		return s.process(ctx, kind, parse, body)
	}, nil)
	s.writeJSON(w, http.StatusOK, relpipe.BatchResponse{Results: results})
}

// runBatchItems is the batch fan-out shared by the synchronous endpoint
// and batch-kind async jobs: items run concurrently under the shared
// per-batch semaphore, each through the caller-supplied execution path,
// and results land in request order. progress (when non-nil) receives
// the completed-item count.
func (s *Server) runBatchItems(items []relpipe.BatchJob, run func(kind string, parse parser, body []byte) outcome, progress func(done int64)) []relpipe.BatchJobResult {
	results := make([]relpipe.BatchJobResult, len(items))
	var done atomic.Int64
	sem := make(chan struct{}, max(1, s.workers))
	var wg sync.WaitGroup
	for i, job := range items {
		wg.Add(1)
		go func(i int, job relpipe.BatchJob) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			parse, ok := batchParsers[job.Kind]
			var out outcome
			if !ok {
				out = errorOutcome(http.StatusBadRequest, fmt.Errorf("batch: unknown kind %q", job.Kind))
			} else {
				out = run(job.Kind, parse, job.Request)
			}
			results[i] = relpipe.BatchJobResult{Status: out.status, Body: out.body}
			if progress != nil {
				progress(done.Add(1))
			}
		}(i, job)
	}
	wg.Wait()
	return results
}

// batchParsers dispatches batch job kinds to the endpoint parsers.
var batchParsers = map[string]parser{
	"optimize":  parseOptimize,
	"evaluate":  parseEvaluate,
	"minperiod": parseMinPeriod,
	"frontier":  parseFrontier,
	"mincost":   parseMinCost,
	"simulate":  parseSimulate,
	"adapt":     parseAdapt,
}

// ---- endpoint parsers ----

// withCtx fills the execution-time fields of a solver Options value
// from the solveCtx: cancellation and the progress hook. Neither enters
// a cache key (they never change an answer).
func withCtx(opts relpipe.Options, sc solveCtx) relpipe.Options {
	opts.Context = sc.context()
	opts.Progress = sc.progress
	opts.Tables = sc.tables
	return opts
}

func parseOptimize(body []byte, ex execOpts) (string, solveFunc, error) {
	var req relpipe.OptimizeRequest
	if err := unmarshalStrict(body, &req); err != nil {
		return "", nil, err
	}
	method, opts, methodKey, err := parseSolveMethod(req.Method, req.Search, ex)
	if err != nil {
		return "", nil, err
	}
	key := req.Instance.Canonical() + methodKey + "|" + floatKey(req.Bounds.Period, req.Bounds.Latency)
	return key, func(sc solveCtx) (any, error) {
		sol, err := relpipe.OptimizeWith(req.Instance, req.Bounds, method, withCtx(opts, sc))
		if err != nil {
			return nil, err
		}
		return relpipe.OptimizeResponse{Solution: sol}, nil
	}, nil
}

func parseEvaluate(body []byte, _ execOpts) (string, solveFunc, error) {
	var req relpipe.EvaluateRequest
	if err := unmarshalStrict(body, &req); err != nil {
		return "", nil, err
	}
	key := req.Instance.Canonical() + "|" + mappingKey(req.Mapping)
	return key, func(solveCtx) (any, error) {
		ev, err := relpipe.Evaluate(req.Instance, req.Mapping)
		if err != nil {
			return nil, err
		}
		return relpipe.EvaluateResponse{Eval: ev}, nil
	}, nil
}

func parseMinPeriod(body []byte, ex execOpts) (string, solveFunc, error) {
	var req relpipe.MinPeriodRequest
	if err := unmarshalStrict(body, &req); err != nil {
		return "", nil, err
	}
	method, opts, methodKey, err := parseSolveMethod(req.Method, req.Search, ex)
	if err != nil {
		return "", nil, err
	}
	key := req.Instance.Canonical() + methodKey + "|" + floatKey(req.MinReliability)
	return key, func(sc solveCtx) (any, error) {
		sol, err := relpipe.MinPeriodMethod(req.Instance, req.MinReliability, method, withCtx(opts, sc))
		if err != nil {
			return nil, err
		}
		return relpipe.OptimizeResponse{Solution: sol}, nil
	}, nil
}

func parseFrontier(body []byte, ex execOpts) (string, solveFunc, error) {
	var req relpipe.FrontierRequest
	if err := unmarshalStrict(body, &req); err != nil {
		return "", nil, err
	}
	return req.Instance.Canonical(), func(sc solveCtx) (any, error) {
		pts, err := relpipe.FrontierWith(req.Instance, withCtx(ex.options(), sc))
		if err != nil {
			return nil, err
		}
		return relpipe.FrontierResponse{Points: pts}, nil
	}, nil
}

func parseMinCost(body []byte, ex execOpts) (string, solveFunc, error) {
	var req relpipe.MinCostRequest
	if err := unmarshalStrict(body, &req); err != nil {
		return "", nil, err
	}
	method, opts, methodKey, err := parseSolveMethod(req.Method, req.Search, ex)
	if err != nil {
		return "", nil, err
	}
	key := req.Instance.Canonical() + methodKey + "|" + floatKey(req.Costs...) +
		"|" + floatKey(req.MinReliability, req.Bounds.Period, req.Bounds.Latency)
	return key, func(sc solveCtx) (any, error) {
		sol, err := relpipe.MinimizeCostWith(req.Instance, req.Costs, req.MinReliability, req.Bounds, method, withCtx(opts, sc))
		if err != nil {
			return nil, err
		}
		return relpipe.MinCostResponse{Solution: sol}, nil
	}, nil
}

func parseSimulate(body []byte, ex execOpts) (string, solveFunc, error) {
	var req relpipe.SimulateRequest
	if err := unmarshalStrict(body, &req); err != nil {
		return "", nil, err
	}
	var routing sim.RoutingMode
	switch req.Routing {
	case "", "one-hop":
		routing = sim.OneHop
	case "two-hop":
		routing = sim.TwoHop
	default:
		return "", nil, fmt.Errorf("simulate: unknown routing %q (want one-hop or two-hop)", req.Routing)
	}
	if req.Replications < 0 {
		return "", nil, fmt.Errorf("simulate: negative replications %d", req.Replications)
	}
	if req.Replications > ex.maxReplications {
		return "", nil, fmt.Errorf("simulate: %d replications exceeds limit %d", req.Replications, ex.maxReplications)
	}
	reps := req.Replications
	if reps == 0 {
		reps = 1
	}
	if req.Seed == 0 {
		// Seed 0 aliases the default seed 1 (the repo-wide convention,
		// matching cmd/simulate and sim.RunBatch); normalizing before
		// the key also makes the two spellings share one cache entry.
		req.Seed = 1
	}
	key := req.Instance.Canonical() + "|" + mappingKey(req.Mapping) +
		"|" + floatKey(req.Period) +
		fmt.Sprintf("|n=%d|s=%d|f=%t|r=%d|w=%d|rep=%d",
			req.DataSets, req.Seed, req.InjectFailures, routing, req.WarmUp, reps)
	cfg := relpipe.SimConfig{
		Chain:          req.Instance.Chain,
		Platform:       req.Instance.Platform,
		Mapping:        req.Mapping,
		Period:         req.Period,
		DataSets:       req.DataSets,
		Seed:           req.Seed,
		InjectFailures: req.InjectFailures,
		Routing:        routing,
		WarmUp:         req.WarmUp,
	}
	return key, func(sc solveCtx) (any, error) {
		if reps > 1 {
			batch, err := relpipe.SimulateBatch(cfg, reps, withCtx(ex.options(), sc))
			if err != nil {
				return nil, err
			}
			return simulateResponse(batch.DataSets(), batch.Successes(),
				batch.SuccessRate(), batch.MeanLatency(), batch.MaxLatency(), batch.MeanSteadyPeriod()), nil
		}
		res, err := relpipe.Simulate(cfg)
		if err != nil {
			return nil, err
		}
		return simulateResponse(res.DataSets, res.Successes,
			res.SuccessRate(), res.MeanLatency(), res.MaxLatency(), res.SteadyPeriod), nil
	}, nil
}

// parseAdapt handles the online-adaptation endpoint. Replications are
// capped like /v1/simulate's (each replication may run many remap
// searches, so an unbounded value would monopolize a worker); the remap
// search knobs are capped like every search-sensitive endpoint's and
// enter the cache key only when the policy actually searches (remap),
// mirroring how exact methods omit them.
func parseAdapt(body []byte, ex execOpts) (string, solveFunc, error) {
	var req relpipe.AdaptRequest
	if err := unmarshalStrict(body, &req); err != nil {
		return "", nil, err
	}
	policyStr := req.Policy
	if policyStr == "" {
		policyStr = "remap"
	}
	policy, err := relpipe.ParseAdaptPolicy(policyStr)
	if err != nil {
		return "", nil, err
	}
	if req.Replications < 0 {
		return "", nil, fmt.Errorf("adapt: negative replications %d", req.Replications)
	}
	if req.Replications > ex.maxReplications {
		return "", nil, fmt.Errorf("adapt: %d replications exceeds limit %d", req.Replications, ex.maxReplications)
	}
	reps := req.Replications
	if reps == 0 {
		reps = 1
	}
	if req.Seed == 0 {
		// Seed 0 aliases the default seed 1 (the repo-wide convention);
		// normalized before the key so both spellings share one entry.
		req.Seed = 1
	}
	opts, searchKey, err := ex.searchOptions(req.Search)
	if err != nil {
		return "", nil, err
	}
	// The knobs shape the answer through two doors: the remap policy's
	// re-optimizations, and the server-side initial Optimize (method
	// Auto, search-sensitive) when no mapping is supplied. Only a
	// non-searching policy over an explicit mapping may drop them.
	if policy != relpipe.AdaptRemap && req.Mapping != nil {
		searchKey = ""
	}
	mapKey := "opt"
	if req.Mapping != nil {
		mapKey = mappingKey(*req.Mapping)
	}
	key := req.Instance.Canonical() + "|" + mapKey +
		"|p=" + policy.String() + searchKey +
		"|" + floatKey(req.Horizon, req.LifeScale, req.SpareCost, req.RepairLatency,
		req.Bounds.Period, req.Bounds.Latency) +
		"|" + floatKey(req.Costs...) +
		fmt.Sprintf("|sp=%d|s=%d|rep=%d", req.Spares, req.Seed, reps)
	return key, func(sc solveCtx) (any, error) {
		opts := withCtx(opts, sc)
		m := relpipe.Mapping{}
		if req.Mapping != nil {
			m = *req.Mapping
		} else {
			// The server-side initial optimize is cancellable but reports
			// no progress: mixing its restart counts with the batch's
			// replication counts would interleave two different units.
			noProg := opts
			noProg.Progress = nil
			sol, err := relpipe.OptimizeWith(req.Instance, req.Bounds, relpipe.Auto, noProg)
			if err != nil {
				return nil, err
			}
			m = sol.Mapping
		}
		batch, err := relpipe.AdaptBatch(req.Instance, m, relpipe.AdaptOptions{
			Policy:        policy,
			Horizon:       req.Horizon,
			Period:        req.Bounds.Period,
			Latency:       req.Bounds.Latency,
			LifeScale:     req.LifeScale,
			Spares:        req.Spares,
			SpareCost:     req.SpareCost,
			Costs:         req.Costs,
			RepairLatency: req.RepairLatency,
			Seed:          req.Seed,
			Restarts:      opts.Restarts,
			Budget:        opts.Budget,
		}, reps, opts)
		if err != nil {
			return nil, err
		}
		return relpipe.AdaptResponse{Policy: policy.String(), Summary: batch.Summarize()}, nil
	}, nil
}

// simulateResponse builds the wire aggregate shared by the single-run
// and batched simulate paths. The simulator reports undefined aggregates
// as NaN (no successful data set, or too few post-warm-up completions
// for SteadyPeriod), which json.Marshal rejects; the wire format uses 0
// for "undefined" (Successes / DataSets disambiguate).
func simulateResponse(dataSets, successes int, successRate, meanLatency, maxLatency, steadyPeriod float64) relpipe.SimulateResponse {
	return relpipe.SimulateResponse{
		DataSets:     dataSets,
		Successes:    successes,
		SuccessRate:  finiteOrZero(successRate),
		MeanLatency:  finiteOrZero(meanLatency),
		MaxLatency:   finiteOrZero(maxLatency),
		SteadyPeriod: finiteOrZero(steadyPeriod),
	}
}

// finiteOrZero maps NaN/±Inf to 0 so responses stay marshalable.
func finiteOrZero(f float64) float64 {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return 0
	}
	return f
}

// ---- shared plumbing ----

// readBody reads a bounded request body. On failure the returned status
// is 413 for a body over the limit and 400 for anything else (e.g. a
// truncated upload).
func readBody(w http.ResponseWriter, r *http.Request, limit int64) (body []byte, status int, err error) {
	defer r.Body.Close()
	b, err := io.ReadAll(http.MaxBytesReader(w, r.Body, limit))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return nil, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", mbe.Limit)
		}
		return nil, http.StatusBadRequest, err
	}
	return b, http.StatusOK, nil
}

// unmarshalStrict decodes JSON rejecting unknown fields and trailing
// data, so typos and concatenated documents fail loudly instead of
// silently solving the wrong problem.
func unmarshalStrict(b []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if _, err := dec.Token(); err != io.EOF {
		return errors.New("request body contains trailing data after the JSON document")
	}
	return nil
}

// errEncodeResponse marks a response DTO that json.Marshal rejected.
var errEncodeResponse = errors.New("service: encode response")

// statusFor maps solver and infrastructure errors to HTTP statuses.
func statusFor(err error) int {
	switch {
	case errors.Is(err, relpipe.ErrInfeasible), errors.Is(err, cost.ErrInfeasible):
		return http.StatusUnprocessableEntity
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrPoolClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrSolvePanic), errors.Is(err, errEncodeResponse):
		return http.StatusInternalServerError
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	default:
		return http.StatusBadRequest
	}
}

func errorOutcome(status int, err error) outcome {
	b, _ := json.Marshal(relpipe.ErrorResponse{Error: err.Error()})
	return outcome{status: status, body: b}
}

// retryAfterSeconds estimates when a 429'd client should come back:
// roughly one queue's worth of work — pending solves over the worker
// count, scaled by the mean observed solve latency — clamped to
// [1s, 60s]. Every 429 the service emits (queue full, job caps) carries
// this header; a fixed "1" would stampede a loaded pool with retries
// exactly when it cannot absorb them.
func (s *Server) retryAfterSeconds() int {
	mean := s.metrics.MeanSolveSeconds()
	if mean <= 0 {
		return 1
	}
	backlog := float64(s.metrics.QueueDepth()+1) / float64(s.workers)
	secs := int(math.Ceil(backlog * mean))
	return min(max(secs, 1), 60)
}

func (s *Server) writeOutcome(w http.ResponseWriter, out outcome) {
	w.Header().Set("Content-Type", "application/json")
	if out.status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
	}
	// In cluster mode every answer names the node whose backend produced
	// it — the owner for routed requests, this node for local work and
	// fallbacks. The e2e suite asserts stable ownership through it.
	if node := out.node; node != "" {
		w.Header().Set(relpipe.NodeHeader, node)
	} else if cl := s.Cluster(); cl != nil {
		w.Header().Set(relpipe.NodeHeader, cl.Self())
	}
	w.WriteHeader(out.status)
	w.Write(out.body)
}

func (s *Server) writeError(w http.ResponseWriter, status int, err error) {
	s.writeOutcome(w, errorOutcome(status, err))
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, err)
		return
	}
	s.writeOutcome(w, outcome{status: status, body: b})
}

// floatKey renders floats exactly (hex mantissa) for cache keys.
func floatKey(fs ...float64) string {
	s := ""
	for i, f := range fs {
		if i > 0 {
			s += ","
		}
		s += strconv.FormatFloat(f, 'x', -1, 64)
	}
	return s
}

// mappingKey renders a mapping canonically (integers only, so %v is
// exact and deterministic).
func mappingKey(m relpipe.Mapping) string {
	return fmt.Sprintf("parts=%v procs=%v", m.Parts, m.Procs)
}
