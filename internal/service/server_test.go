package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"relpipe"
	"relpipe/internal/obs"
)

// testInstance is a small homogeneous instance every endpoint can solve
// in milliseconds.
func testInstance(seed uint64) relpipe.Instance {
	return relpipe.Instance{
		Chain:    relpipe.RandomChain(seed, 8, 1, 100, 1, 10),
		Platform: relpipe.HomogeneousPlatform(6, 1, 1e-8, 1, 1e-5, 3),
	}
}

func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s := NewServer(opts)
	ts := httptest.NewServer(s)
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts
}

// postJSON posts v and decodes the response body into out (if non-nil),
// returning the status code.
func postJSON(t *testing.T, url string, v any, out any) int {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode response: %v", err)
		}
	}
	return resp.StatusCode
}

func TestOptimizeEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	in := testInstance(1)
	var resp relpipe.OptimizeResponse
	code := postJSON(t, ts.URL+"/v1/optimize",
		relpipe.OptimizeRequest{Instance: in, Bounds: relpipe.Bounds{Period: 200, Latency: 700}, Method: "exact"},
		&resp)
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if resp.Solution.Method != "exact" || len(resp.Solution.Mapping.Parts) == 0 {
		t.Fatalf("solution = %+v", resp.Solution)
	}
	if err := resp.Solution.Mapping.Validate(in.Chain, in.Platform); err != nil {
		t.Fatalf("returned mapping invalid: %v", err)
	}
	if resp.Solution.Eval.WorstPeriod > 200 || resp.Solution.Eval.WorstLatency > 700 {
		t.Fatalf("bounds violated: %+v", resp.Solution.Eval)
	}
}

func TestOptimizeInfeasibleIs422(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	code := postJSON(t, ts.URL+"/v1/optimize",
		relpipe.OptimizeRequest{Instance: testInstance(1), Bounds: relpipe.Bounds{Period: 1e-6}}, nil)
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d, want 422", code)
	}
}

func TestMalformedRequestsAre400(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	for name, body := range map[string]string{
		"syntax":        `{"instance":`,
		"unknown-field": `{"instance":{"chain":[{"work":1,"out":0}],"platform":{"procs":[{"speed":1,"failRate":0}],"bandwidth":1,"linkFailRate":0,"maxReplicas":1}},"typo":1}`,
		"bad-method":    `{"instance":{"chain":[{"work":1,"out":0}],"platform":{"procs":[{"speed":1,"failRate":0}],"bandwidth":1,"linkFailRate":0,"maxReplicas":1}},"method":"nope"}`,
		"invalid-chain": `{"instance":{"chain":[{"work":-1,"out":0}],"platform":{"procs":[{"speed":1,"failRate":0}],"bandwidth":1,"linkFailRate":0,"maxReplicas":1}}}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/optimize", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", name, resp.StatusCode)
		}
	}
}

func TestMethodNotAllowed(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp, err := http.Get(ts.URL + "/v1/optimize")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/optimize = %d, want 405", resp.StatusCode)
	}
}

func TestEvaluateEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	in := testInstance(2)
	sol, err := relpipe.Optimize(in, relpipe.Bounds{}, relpipe.DP)
	if err != nil {
		t.Fatal(err)
	}
	var resp relpipe.EvaluateResponse
	code := postJSON(t, ts.URL+"/v1/evaluate",
		relpipe.EvaluateRequest{Instance: in, Mapping: sol.Mapping}, &resp)
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if resp.Eval.WorstPeriod <= 0 || resp.Eval.FailProb < 0 || resp.Eval.FailProb > 1 {
		t.Fatalf("eval = %+v", resp.Eval)
	}
	if resp.Eval.LogRel != sol.Eval.LogRel {
		t.Fatalf("service eval %v != library eval %v", resp.Eval.LogRel, sol.Eval.LogRel)
	}
}

func TestMinPeriodEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	var resp relpipe.OptimizeResponse
	code := postJSON(t, ts.URL+"/v1/minperiod",
		relpipe.MinPeriodRequest{Instance: testInstance(3), MinReliability: 0.9}, &resp)
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if resp.Solution.Method != "min-period" || resp.Solution.Eval.WorstPeriod <= 0 {
		t.Fatalf("solution = %+v", resp.Solution)
	}
}

func TestFrontierEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	var resp relpipe.FrontierResponse
	code := postJSON(t, ts.URL+"/v1/frontier",
		relpipe.FrontierRequest{Instance: testInstance(4)}, &resp)
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if len(resp.Points) == 0 {
		t.Fatal("empty frontier")
	}
	for i := 1; i < len(resp.Points); i++ {
		if resp.Points[i].Period < resp.Points[i-1].Period {
			t.Fatal("frontier not sorted by period")
		}
	}
}

func TestMinCostEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	in := testInstance(5)
	costs := make([]float64, in.Platform.P())
	for i := range costs {
		costs[i] = float64(i + 1)
	}
	var resp relpipe.MinCostResponse
	code := postJSON(t, ts.URL+"/v1/mincost",
		relpipe.MinCostRequest{Instance: in, Costs: costs, MinReliability: 0.99}, &resp)
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if resp.Solution.TotalCost <= 0 || len(resp.Solution.Mapping.Parts) == 0 {
		t.Fatalf("solution = %+v", resp.Solution)
	}
}

func TestSimulateEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	in := testInstance(6)
	sol, err := relpipe.Optimize(in, relpipe.Bounds{}, relpipe.DP)
	if err != nil {
		t.Fatal(err)
	}
	var resp relpipe.SimulateResponse
	code := postJSON(t, ts.URL+"/v1/simulate", relpipe.SimulateRequest{
		Instance: in, Mapping: sol.Mapping,
		Period: sol.Eval.WorstPeriod, DataSets: 100, Routing: "two-hop",
	}, &resp)
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if resp.DataSets != 100 || resp.SuccessRate != 1 {
		t.Fatalf("failure-free run: %+v", resp)
	}
	// Unknown routing mode is a 400.
	code = postJSON(t, ts.URL+"/v1/simulate", relpipe.SimulateRequest{
		Instance: in, Mapping: sol.Mapping, Period: 100, DataSets: 10, Routing: "three-hop",
	}, nil)
	if code != http.StatusBadRequest {
		t.Fatalf("bad routing status = %d, want 400", code)
	}
}

func TestBatchEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	in := testInstance(7)
	sol, err := relpipe.Optimize(in, relpipe.Bounds{}, relpipe.DP)
	if err != nil {
		t.Fatal(err)
	}
	mustRaw := func(v any) json.RawMessage {
		b, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	var resp relpipe.BatchResponse
	code := postJSON(t, ts.URL+"/v1/batch", relpipe.BatchRequest{Jobs: []relpipe.BatchJob{
		{Kind: "optimize", Request: mustRaw(relpipe.OptimizeRequest{Instance: in, Method: "dp"})},
		{Kind: "evaluate", Request: mustRaw(relpipe.EvaluateRequest{Instance: in, Mapping: sol.Mapping})},
		{Kind: "nonsense", Request: mustRaw(struct{}{})},
		{Kind: "optimize", Request: mustRaw(relpipe.OptimizeRequest{Instance: in, Bounds: relpipe.Bounds{Period: 1e-6}})},
	}}, &resp)
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	want := []int{200, 200, 400, 422}
	if len(resp.Results) != len(want) {
		t.Fatalf("%d results, want %d", len(resp.Results), len(want))
	}
	for i, w := range want {
		if resp.Results[i].Status != w {
			t.Errorf("job %d: status %d, want %d (body %s)", i, resp.Results[i].Status, w, resp.Results[i].Body)
		}
	}
	var opt relpipe.OptimizeResponse
	if err := json.Unmarshal(resp.Results[0].Body, &opt); err != nil || opt.Solution.Method != "dp" {
		t.Fatalf("job 0 body: %v %+v", err, opt.Solution)
	}
}

func TestBatchLimits(t *testing.T) {
	_, ts := newTestServer(t, Options{MaxBatchJobs: 2})
	jobs := make([]relpipe.BatchJob, 3)
	for i := range jobs {
		jobs[i] = relpipe.BatchJob{Kind: "frontier", Request: json.RawMessage(`{}`)}
	}
	if code := postJSON(t, ts.URL+"/v1/batch", relpipe.BatchRequest{Jobs: jobs}, nil); code != http.StatusBadRequest {
		t.Fatalf("oversized batch status = %d, want 400", code)
	}
	if code := postJSON(t, ts.URL+"/v1/batch", relpipe.BatchRequest{}, nil); code != http.StatusBadRequest {
		t.Fatalf("empty batch status = %d, want 400", code)
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || doc.Status != "ok" {
		t.Fatalf("healthz = %d %+v", resp.StatusCode, doc)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	postJSON(t, ts.URL+"/v1/optimize", relpipe.OptimizeRequest{Instance: testInstance(8), Method: "dp"}, nil)
	postJSON(t, ts.URL+"/v1/optimize", relpipe.OptimizeRequest{Instance: testInstance(8), Method: "dp"}, nil)
	resp, err := http.Get(ts.URL + "/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc struct {
		Requests     map[string]int64 `json:"requests"`
		CacheHits    int64            `json:"cacheHits"`
		CacheMisses  int64            `json:"cacheMisses"`
		Solves       int64            `json:"solves"`
		SolveLatency struct {
			Count   int64 `json:"count"`
			Buckets []struct {
				LE    float64 `json:"le"`
				Count int64   `json:"count"`
			} `json:"buckets"`
			Inf int64 `json:"infCount"`
		} `json:"solveLatency"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.Requests["optimize"] != 2 || doc.Solves != 1 || doc.CacheHits != 1 || doc.CacheMisses != 1 {
		t.Fatalf("metrics = %+v", doc)
	}
	if doc.SolveLatency.Count != 1 || doc.SolveLatency.Inf != 1 {
		t.Fatalf("latency histogram = %+v", doc.SolveLatency)
	}
	if s.Metrics().Solves() != 1 {
		t.Fatalf("Solves() = %d", s.Metrics().Solves())
	}
}

func TestCachedRepeatSkipsSolve(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	req := relpipe.OptimizeRequest{Instance: testInstance(9), Method: "exact", Bounds: relpipe.Bounds{Period: 300}}
	var first, second relpipe.OptimizeResponse
	if code := postJSON(t, ts.URL+"/v1/optimize", req, &first); code != http.StatusOK {
		t.Fatalf("first status = %d", code)
	}
	if code := postJSON(t, ts.URL+"/v1/optimize", req, &second); code != http.StatusOK {
		t.Fatalf("second status = %d", code)
	}
	if s.Metrics().Solves() != 1 {
		t.Fatalf("solves = %d, want 1 (second request must be served from cache)", s.Metrics().Solves())
	}
	if s.Metrics().CacheHits() != 1 {
		t.Fatalf("cache hits = %d, want 1", s.Metrics().CacheHits())
	}
	a, _ := json.Marshal(first)
	b, _ := json.Marshal(second)
	if !bytes.Equal(a, b) {
		t.Fatal("cached response differs from original")
	}
}

func TestCacheKeySeparatesEndpointsAndParams(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	in := testInstance(10)
	postJSON(t, ts.URL+"/v1/optimize", relpipe.OptimizeRequest{Instance: in, Method: "dp"}, nil)
	// Different method, different bounds, different endpoint: all must miss.
	postJSON(t, ts.URL+"/v1/optimize", relpipe.OptimizeRequest{Instance: in, Method: "heur-p", Bounds: relpipe.Bounds{Period: 500}}, nil)
	postJSON(t, ts.URL+"/v1/optimize", relpipe.OptimizeRequest{Instance: in, Method: "dp", Bounds: relpipe.Bounds{Period: 500}}, nil)
	postJSON(t, ts.URL+"/v1/frontier", relpipe.FrontierRequest{Instance: in}, nil)
	if hits := s.Metrics().CacheHits(); hits != 0 {
		t.Fatalf("cache hits = %d, want 0 (distinct requests must not collide)", hits)
	}
	if solves := s.Metrics().Solves(); solves != 4 {
		t.Fatalf("solves = %d, want 4", solves)
	}
}

func TestQueueFullIs429WithRetryAfter(t *testing.T) {
	s := NewServer(Options{Workers: 1, QueueSize: 1})
	defer s.Close()

	block := make(chan struct{})
	started := make(chan struct{})
	blocking := func(body []byte, _ execOpts) (string, solveFunc, error) {
		return string(body), func(solveCtx) (any, error) {
			if string(body) == "A" {
				close(started)
			}
			<-block
			return relpipe.ErrorResponse{}, nil
		}, nil
	}
	go s.process(context.Background(), "test", blocking, []byte("A")) // occupies the worker
	<-started
	done := make(chan outcome, 1)
	go func() { done <- s.process(context.Background(), "test", blocking, []byte("B")) }() // fills the queue
	waitFor(t, func() bool { return s.metrics.QueueDepth() == 1 })

	out := s.process(context.Background(), "test", blocking, []byte("C")) // must be shed
	if out.status != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", out.status)
	}
	rec := httptest.NewRecorder()
	s.writeOutcome(rec, out)
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("429 response missing Retry-After")
	}
	if snap := s.Metrics().Snapshot().(snapshot); snap.Rejected != 1 {
		t.Fatalf("rejected = %d, want 1", snap.Rejected)
	}
	close(block)
	if out := <-done; out.status != http.StatusOK {
		t.Fatalf("queued request status = %d", out.status)
	}
}

func TestOversizedBodyRejected(t *testing.T) {
	_, ts := newTestServer(t, Options{MaxBodyBytes: 64})
	body := fmt.Sprintf(`{"instance":%s}`, strings.Repeat("x", 128))
	resp, err := http.Post(ts.URL+"/v1/optimize", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", resp.StatusCode)
	}
}

// TestSimulateUndefinedAggregatesAreZero: with a single data set the
// simulator cannot define SteadyPeriod (it is NaN internally), which
// json.Marshal would reject; the service must answer 200 with 0 instead
// of 500.
func TestSimulateUndefinedAggregatesAreZero(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	in := testInstance(51)
	var out relpipe.SimulateResponse
	status := postJSON(t, ts.URL+"/v1/simulate", relpipe.SimulateRequest{
		Instance: in,
		Mapping: relpipe.Mapping{
			Parts: []relpipe.Interval{{First: 0, Last: len(in.Chain) - 1}},
			Procs: [][]int{{0}},
		},
		Period:   1e6,
		DataSets: 1,
	}, &out)
	if status != http.StatusOK {
		t.Fatalf("status = %d, want 200", status)
	}
	if out.SteadyPeriod != 0 {
		t.Fatalf("SteadyPeriod = %v, want 0 for a single data set", out.SteadyPeriod)
	}
}

// truncatedBody reports an unexpected EOF partway through the declared
// length, as a client that disconnects mid-upload does.
type truncatedBody struct{ read bool }

func (b *truncatedBody) Read(p []byte) (int, error) {
	if b.read {
		return 0, io.ErrUnexpectedEOF
	}
	b.read = true
	return copy(p, `{"inst`), nil
}

func TestTrailingDataIs400(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	b, err := json.Marshal(relpipe.OptimizeRequest{Instance: testInstance(8)})
	if err != nil {
		t.Fatal(err)
	}
	// Two concatenated documents: strict decode must reject the body
	// instead of silently solving only the first.
	resp, err := http.Post(ts.URL+"/v1/optimize", "application/json",
		bytes.NewReader(append(b, `{"bounds":{"period":1}}`...)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400 for trailing data", resp.StatusCode)
	}
}

func TestTruncatedBodyIs400(t *testing.T) {
	s := NewServer(Options{})
	defer s.Close()
	req := httptest.NewRequest("POST", "/v1/optimize", &truncatedBody{})
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400 (not 413) for a truncated upload", rec.Code)
	}
}

// TestTimedOutSolveStillCaches: a solve that outlives the request
// timeout answers 504, but the worker-side completion must land in the
// cache so the next identical request is a hit, not another doomed
// solve.
func TestTimedOutSolveStillCaches(t *testing.T) {
	s := NewServer(Options{RequestTimeout: 10 * time.Millisecond})
	defer s.Close()
	done := make(chan struct{})
	slow := func(body []byte, _ execOpts) (string, solveFunc, error) {
		return "k", func(solveCtx) (any, error) {
			defer close(done)
			time.Sleep(100 * time.Millisecond)
			return map[string]int{"x": 1}, nil
		}, nil
	}
	if out := s.process(context.Background(), "slow", slow, nil); out.status != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504", out.status)
	}
	<-done // the abandoned solve has finished; its Put follows at once
	waitFor(t, func() bool { _, ok := s.cache.Get("slow|k"); return ok })
	fail := func(body []byte, _ execOpts) (string, solveFunc, error) {
		return "k", func(solveCtx) (any, error) {
			t.Error("identical request re-solved instead of hitting the cache")
			return nil, nil
		}, nil
	}
	if out := s.process(context.Background(), "slow", fail, nil); out.status != http.StatusOK {
		t.Fatalf("repeat status = %d, want 200 from cache", out.status)
	}
	if got := s.Metrics().Solves(); got != 1 {
		t.Fatalf("solves = %d, want 1", got)
	}
}

func TestCanonicalHashStability(t *testing.T) {
	a := testInstance(11)
	b := testInstance(11)
	if a.Canonical() != b.Canonical() {
		t.Fatal("identical instances must hash identically")
	}
	c := testInstance(12)
	if a.Canonical() == c.Canonical() {
		t.Fatal("distinct instances must hash differently")
	}
	// A round trip through JSON must preserve the hash (floats encode
	// exactly).
	raw, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	var back relpipe.Instance
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Canonical() != a.Canonical() {
		t.Fatal("JSON round trip changed the canonical hash")
	}
}

func TestHistogramBucketConstant(t *testing.T) {
	if len(latencyBuckets) != len(obs.DefBuckets) {
		t.Fatalf("len(latencyBuckets) = %d, len(obs.DefBuckets) = %d", len(latencyBuckets), len(obs.DefBuckets))
	}
	for i, b := range latencyBuckets {
		if b != obs.DefBuckets[i] {
			t.Fatalf("latencyBuckets[%d] = %v, obs.DefBuckets[%d] = %v", i, b, i, obs.DefBuckets[i])
		}
	}
}
