package service

// Service-layer pinning of the flat-array Monte-Carlo engine: the
// /v1/simulate wire response must equal the aggregates of the scalar
// reference engine, single-run and batched. The wire format maps
// undefined aggregates (NaN) to 0; the comparison goes through the same
// mapping.

import (
	"math"
	"net/http"
	"testing"

	"relpipe"
)

func TestSimulateEndpointMatchesScalarReference(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	in := testInstance(9)
	var opt relpipe.OptimizeResponse
	if code := postJSON(t, ts.URL+"/v1/optimize",
		relpipe.OptimizeRequest{Instance: in, Bounds: relpipe.Bounds{Period: 200}, Method: "exact"}, &opt); code != http.StatusOK {
		t.Fatalf("optimize status = %d", code)
	}

	for _, reps := range []int{1, 4} {
		var resp relpipe.SimulateResponse
		code := postJSON(t, ts.URL+"/v1/simulate", relpipe.SimulateRequest{
			Instance: in, Mapping: opt.Solution.Mapping,
			Period: 200, DataSets: 300, Seed: 5, InjectFailures: true,
			Routing: "two-hop", WarmUp: 10, Replications: reps,
		}, &resp)
		if code != http.StatusOK {
			t.Fatalf("reps=%d: status = %d", reps, code)
		}

		// Recompute through the scalar reference oracle, mirroring the
		// parser's dispatch (single Run vs RunBatch) and the wire's
		// NaN-to-0 mapping.
		cfg := relpipe.SimConfig{
			Chain: in.Chain, Platform: in.Platform, Mapping: opt.Solution.Mapping,
			Period: 200, DataSets: 300, Seed: 5, InjectFailures: true,
			Routing: relpipe.SimTwoHop, WarmUp: 10, ScalarReference: true,
		}
		var want relpipe.SimulateResponse
		if reps > 1 {
			batch, err := relpipe.SimulateBatch(cfg, reps, relpipe.Options{Parallelism: 1})
			if err != nil {
				t.Fatal(err)
			}
			want = relpipe.SimulateResponse{
				DataSets: batch.DataSets(), Successes: batch.Successes(),
				SuccessRate:  zeroIfNaN(batch.SuccessRate()),
				MeanLatency:  zeroIfNaN(batch.MeanLatency()),
				MaxLatency:   zeroIfNaN(batch.MaxLatency()),
				SteadyPeriod: zeroIfNaN(batch.MeanSteadyPeriod()),
			}
		} else {
			res, err := relpipe.Simulate(cfg)
			if err != nil {
				t.Fatal(err)
			}
			want = relpipe.SimulateResponse{
				DataSets: res.DataSets, Successes: res.Successes,
				SuccessRate:  zeroIfNaN(res.SuccessRate()),
				MeanLatency:  zeroIfNaN(res.MeanLatency()),
				MaxLatency:   zeroIfNaN(res.MaxLatency()),
				SteadyPeriod: zeroIfNaN(res.SteadyPeriod),
			}
		}
		if resp != want {
			t.Fatalf("reps=%d: /v1/simulate %+v diverges from scalar reference %+v", reps, resp, want)
		}
	}
}

func zeroIfNaN(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}
