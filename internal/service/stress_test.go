package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"testing"

	"relpipe"
)

// TestStressIdenticalRequestsShareOneSolve is the service's concurrency
// contract: 64 concurrent identical /v1/optimize requests produce
// exactly one underlying solve — every other request either joins the
// in-flight solve (dedup) or is served from the result cache — with no
// data races (run under -race) and byte-identical responses.
func TestStressIdenticalRequestsShareOneSolve(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	const clients = 64

	body, err := json.Marshal(relpipe.OptimizeRequest{
		Instance: testInstance(21),
		Bounds:   relpipe.Bounds{Period: 300, Latency: 900},
		Method:   "exact",
	})
	if err != nil {
		t.Fatal(err)
	}

	responses := make([][]byte, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/optimize", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Errorf("client %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("client %d: status %d", i, resp.StatusCode)
				return
			}
			responses[i], err = io.ReadAll(resp.Body)
			if err != nil {
				t.Errorf("client %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()

	if solves := s.Metrics().Solves(); solves != 1 {
		t.Fatalf("solves = %d, want exactly 1 for %d identical requests", solves, clients)
	}
	joins, hits := s.Metrics().DedupJoins(), s.Metrics().CacheHits()
	if joins+hits != clients-1 {
		t.Fatalf("dedup joins (%d) + cache hits (%d) = %d, want %d",
			joins, hits, joins+hits, clients-1)
	}
	for i := 1; i < clients; i++ {
		if !bytes.Equal(responses[i], responses[0]) {
			t.Fatalf("client %d got a different response body", i)
		}
	}

	// A later repeat of the same request must be a pure cache hit.
	resp, err := http.Post(ts.URL+"/v1/optimize", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("repeat status = %d", resp.StatusCode)
	}
	if s.Metrics().Solves() != 1 {
		t.Fatal("repeat request triggered a new solve")
	}
	if s.Metrics().CacheHits() != hits+1 {
		t.Fatal("repeat request did not hit the cache")
	}
}

// TestStressMixedWorkload hammers the service with 64 concurrent
// requests spread over distinct instances and endpoints; every request
// must succeed and the solve count must not exceed the number of
// distinct jobs.
func TestStressMixedWorkload(t *testing.T) {
	s, ts := newTestServer(t, Options{QueueSize: 256})
	const clients = 64
	const distinct = 8

	bodies := make([][]byte, distinct)
	urls := make([]string, distinct)
	for i := range bodies {
		var v any
		in := testInstance(uint64(30 + i/2)) // instances shared across endpoint pairs
		if i%2 == 0 {
			urls[i] = ts.URL + "/v1/optimize"
			v = relpipe.OptimizeRequest{Instance: in, Method: "dp"}
		} else {
			urls[i] = ts.URL + "/v1/frontier"
			v = relpipe.FrontierRequest{Instance: in}
		}
		b, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		bodies[i] = b
	}

	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(urls[i%distinct], "application/json", bytes.NewReader(bodies[i%distinct]))
			if err != nil {
				t.Errorf("client %d: %v", i, err)
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("client %d: status %d", i, resp.StatusCode)
			}
		}(i)
	}
	wg.Wait()

	if solves := s.Metrics().Solves(); solves > distinct {
		t.Fatalf("solves = %d, want ≤ %d distinct jobs", solves, distinct)
	}
}
