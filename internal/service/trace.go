package service

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"strings"
	"time"

	"relpipe"
	"relpipe/internal/obs"
)

// This file is the observability middleware of the server: every
// request flows through serveObserved, which opens the request's trace
// (solver endpoints only), issues the X-Trace-Id header, records the
// per-endpoint HTTP metrics, and emits one structured log line. The
// recorded traces are served back at GET /debug/traces.

// serveObserved wraps the route mux with tracing, metrics and logging.
func (s *Server) serveObserved(w http.ResponseWriter, r *http.Request) {
	endpoint := endpointLabel(r.URL.Path)
	start := time.Now()

	// Solver endpoints get a trace; the monitoring surface itself
	// (/metrics, /healthz, /debug) would only pollute the recorder.
	var root *obs.SpanHandle
	if strings.HasPrefix(r.URL.Path, "/v1/") {
		ctx, h := s.recorder.StartTrace(r.Context(), r.Method+" "+endpoint)
		root = h
		if id := obs.TraceIDFrom(ctx); id != "" {
			w.Header().Set(relpipe.TraceHeader, id)
		}
		r = r.WithContext(ctx)
	}

	sr := &statusRecorder{ResponseWriter: w}
	s.mux.ServeHTTP(sr, r)

	code := sr.code()
	elapsed := time.Since(start)
	s.metrics.HTTPRequest(endpoint, code, elapsed.Seconds())
	if root != nil {
		root.SetAttr("method", r.Method)
		root.SetAttr("path", r.URL.Path)
		root.SetAttr("status", strconv.Itoa(code))
		root.End()
	}
	if s.logger != nil {
		s.logger.Info("request",
			"method", r.Method,
			"endpoint", endpoint,
			"path", r.URL.Path,
			"status", code,
			"durationMs", float64(elapsed.Microseconds())/1000,
			"traceId", obs.TraceIDFrom(r.Context()),
		)
	}
}

// endpointLabel buckets a request path into a bounded label set: the
// fixed routes keep their path, job-instance routes collapse onto
// /v1/jobs (IDs must not become label values), everything else is
// "other" so arbitrary probes cannot grow the metric families.
func endpointLabel(path string) string {
	if strings.HasPrefix(path, "/v1/jobs") {
		return "/v1/jobs"
	}
	if strings.HasPrefix(path, "/v1/fleet") {
		return "/v1/fleet"
	}
	if strings.HasPrefix(path, "/debug/pprof") {
		return "/debug/pprof"
	}
	switch path {
	case "/v1/optimize", "/v1/evaluate", "/v1/minperiod", "/v1/frontier",
		"/v1/mincost", "/v1/simulate", "/v1/adapt", "/v1/batch",
		"/healthz", "/readyz", "/metrics", "/metrics.json", "/debug/traces":
		return path
	}
	return "other"
}

// statusRecorder captures the response status for metrics and logging.
// It forwards Flush so the SSE event stream keeps working through the
// middleware.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (sr *statusRecorder) WriteHeader(code int) {
	if sr.status == 0 {
		sr.status = code
	}
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Write(b []byte) (int, error) {
	if sr.status == 0 {
		sr.status = http.StatusOK
	}
	return sr.ResponseWriter.Write(b)
}

func (sr *statusRecorder) Flush() {
	if f, ok := sr.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// code returns the recorded status (200 when the handler never wrote).
func (sr *statusRecorder) code() int {
	if sr.status == 0 {
		return http.StatusOK
	}
	return sr.status
}

var errTraceNotFound = errors.New("traces: no such trace")

// tracesResponse is the GET /debug/traces document.
type tracesResponse struct {
	Traces []obs.Trace `json:"traces"`
}

// handleTraces serves the recorded traces, newest first
// ("GET /debug/traces"); ?id= selects one trace by X-Trace-Id value.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if id := r.URL.Query().Get("id"); id != "" {
		t, ok := s.recorder.Find(id)
		if !ok {
			s.writeError(w, http.StatusNotFound, errTraceNotFound)
			return
		}
		json.NewEncoder(w).Encode(tracesResponse{Traces: []obs.Trace{t}})
		return
	}
	traces := s.recorder.Traces()
	if traces == nil {
		traces = []obs.Trace{}
	}
	json.NewEncoder(w).Encode(tracesResponse{Traces: traces})
}
