package sim

import (
	"context"
	"errors"
	"math"

	"time"

	"relpipe/internal/obs"
	"relpipe/internal/par"
	"relpipe/internal/progress"
	"relpipe/internal/rng"
)

// BatchResult aggregates the independent replications of one RunBatch
// call. Runs and Seeds are in replication order; replication r ran with
// Seeds[r], so any replication can be reproduced standalone.
type BatchResult struct {
	Runs  []Result
	Seeds []uint64
}

// RunBatch executes replications independent copies of the simulation,
// each with its own seed derived deterministically from cfg.Seed, on up
// to par.Degree(parallelism) goroutines (see internal/par; 1 =
// sequential, 0 = GOMAXPROCS). Replication seeds are drawn from the
// master generator before any run starts and each replication is a
// deterministic function of its seed alone, so the batch is bit-identical
// for every degree — this is the Monte-Carlo counterpart of the paper's
// closed forms at service scale: reliability estimates tighten with
// replications × DataSets while the wall-clock stays one run's worth per
// worker.
//
// cfg.Trace must be nil: a shared trace would interleave operations
// nondeterministically across replications. Trace single runs instead.
//
// A Seed of 0 aliases the default seed 1 — the repo-wide convention
// (search, adapt, the CLIs' -seed flags) — so a zero-value batch and an
// explicitly seed-1 batch are the same reproducible experiment.
func RunBatch(ctx context.Context, cfg Config, replications, parallelism int) (BatchResult, error) {
	if replications <= 0 {
		return BatchResult{}, errors.New("sim: replications must be positive")
	}
	if cfg.Trace != nil {
		return BatchResult{}, errors.New("sim: Trace is not supported by RunBatch; trace a single Run instead")
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	master := rng.New(cfg.Seed)
	seeds := make([]uint64, replications)
	for r := range seeds {
		seeds[r] = master.Uint64()
	}
	reps := progress.NewCounter(int64(replications), cfg.Progress)
	batchStart := time.Now()
	var runs []Result
	var err error
	if cfg.ScalarReference {
		// Reference path: one scalar event loop per replication, exactly
		// the pre-flat-engine implementation (the differential suite and
		// the bench's monte-carlo-scalar kernel run through here).
		runs, err = par.Map(ctx, parallelism, replications, func(r int) (Result, error) {
			c := cfg
			c.Seed = seeds[r]
			c.Progress = nil // per-replication runs report nothing themselves
			res, runErr := Run(c)
			if runErr == nil {
				reps.Add(1)
			}
			return res, runErr
		})
	} else {
		runs, err = runBatchSoA(ctx, cfg, seeds, parallelism, reps)
	}
	if err != nil {
		return BatchResult{}, err
	}
	obs.Stage(ctx, "sim.batch", batchStart, int64(replications), nil)
	return BatchResult{Runs: runs, Seeds: seeds}, nil
}

// runBatchSoA executes the replications on the flat-array engine: the
// segment tables are built once and shared read-only by every worker,
// and each worker drives a contiguous shard of replications through one
// reused engine (allocation-free after its first replication). Results
// are bit-identical to the scalar path at every parallelism degree.
func runBatchSoA(ctx context.Context, cfg Config, seeds []uint64, parallelism int, reps *progress.Counter) ([]Result, error) {
	t, err := newSoaTables(cfg)
	if err != nil {
		return nil, err
	}
	runs := make([]Result, len(seeds))
	if !cfg.InjectFailures {
		// No failure sampling means no RNG draws: every replication is
		// the same deterministic run. Simulate once, hand each
		// replication its own copy of the outcome.
		res, err := newSoaEngine(t, ctx).run(seeds[0])
		if err != nil {
			return nil, err
		}
		for r := range runs {
			runs[r] = copyResult(res)
			reps.Add(1)
		}
		return runs, nil
	}
	err = par.Run(ctx, parallelism, len(seeds), func(ctx context.Context, s par.Shard) error {
		eng := newSoaEngine(t, ctx)
		for r := s.Lo; r < s.Hi; r++ {
			res, err := eng.run(seeds[r])
			if err != nil {
				return err
			}
			runs[r] = res
			reps.Add(1)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return runs, nil
}

// DataSets returns the total data sets injected across replications.
func (b BatchResult) DataSets() int {
	t := 0
	for _, r := range b.Runs {
		t += r.DataSets
	}
	return t
}

// Successes returns the total fully processed data sets.
func (b BatchResult) Successes() int {
	t := 0
	for _, r := range b.Runs {
		t += r.Successes
	}
	return t
}

// SuccessRate returns the pooled success fraction (NaN for an empty
// batch).
func (b BatchResult) SuccessRate() float64 {
	n := b.DataSets()
	if n == 0 {
		return math.NaN()
	}
	return float64(b.Successes()) / float64(n)
}

// FailureRate returns 1 - SuccessRate.
func (b BatchResult) FailureRate() float64 { return 1 - b.SuccessRate() }

// MeanLatency returns the mean latency over every successful data set of
// every replication (NaN when none succeeded).
func (b BatchResult) MeanLatency() float64 {
	s, n := 0.0, 0
	for _, r := range b.Runs {
		for _, l := range r.Latencies {
			s += l
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return s / float64(n)
}

// MaxLatency returns the largest latency observed in any replication
// (NaN when none succeeded).
func (b BatchResult) MaxLatency() float64 {
	m, seen := 0.0, false
	for _, r := range b.Runs {
		for _, l := range r.Latencies {
			if !seen || l > m {
				m, seen = l, true
			}
		}
	}
	if !seen {
		return math.NaN()
	}
	return m
}

// MeanSteadyPeriod returns the mean steady-state period over the
// replications that could estimate one (NaN when none could).
func (b BatchResult) MeanSteadyPeriod() float64 {
	s, n := 0.0, 0
	for _, r := range b.Runs {
		if !math.IsNaN(r.SteadyPeriod) {
			s += r.SteadyPeriod
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return s / float64(n)
}
