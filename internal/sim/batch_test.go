package sim

import (
	"context"
	"math"
	"reflect"
	"testing"

	"relpipe/internal/chain"
	"relpipe/internal/dp"
	"relpipe/internal/mapping"
	"relpipe/internal/platform"
	"relpipe/internal/rng"
)

func batchConfig(t *testing.T, seed uint64) Config {
	t.Helper()
	c := chain.PaperRandom(rng.New(seed), 8)
	pl := platform.Homogeneous(6, 1, 1e-4, 1, 1e-3, 3)
	m, _, err := dp.OptimizeReliability(c, pl)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := mapping.Evaluate(c, pl, m)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Chain: c, Platform: pl, Mapping: m,
		Period: ev.WorstPeriod, DataSets: 200, Seed: seed,
		InjectFailures: true, Routing: TwoHop,
	}
}

// TestRunBatchMatchesSequential asserts the parallel Monte-Carlo batch
// is bit-identical to a sequential loop over the derived seeds, for
// every degree.
func TestRunBatchMatchesSequential(t *testing.T) {
	cfg := batchConfig(t, 42)
	const reps = 6

	// The reference: derive the seeds exactly as RunBatch documents and
	// run each replication inline.
	master := rng.New(cfg.Seed)
	var want []Result
	for r := 0; r < reps; r++ {
		c := cfg
		c.Seed = master.Uint64()
		res, err := Run(c)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, res)
	}

	for _, p := range []int{1, 2, 8} {
		got, err := RunBatch(context.Background(), cfg, reps, p)
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		if len(got.Runs) != reps || len(got.Seeds) != reps {
			t.Fatalf("P=%d: %d runs, %d seeds", p, len(got.Runs), len(got.Seeds))
		}
		if !reflect.DeepEqual(got.Runs, want) {
			t.Fatalf("P=%d: batch runs differ from the sequential reference", p)
		}
	}
}

func TestRunBatchAggregates(t *testing.T) {
	cfg := batchConfig(t, 7)
	b, err := RunBatch(context.Background(), cfg, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := b.DataSets(), 4*cfg.DataSets; got != want {
		t.Fatalf("DataSets = %d, want %d", got, want)
	}
	if b.Successes() > b.DataSets() {
		t.Fatalf("Successes = %d > DataSets = %d", b.Successes(), b.DataSets())
	}
	if sr := b.SuccessRate(); sr < 0 || sr > 1 {
		t.Fatalf("SuccessRate = %g", sr)
	}
	if b.Successes() > 0 {
		if ml := b.MeanLatency(); math.IsNaN(ml) || ml <= 0 {
			t.Fatalf("MeanLatency = %g", ml)
		}
		if mx := b.MaxLatency(); mx < b.MeanLatency() {
			t.Fatalf("MaxLatency %g < MeanLatency %g", mx, b.MeanLatency())
		}
	}
	// Per-replication reproducibility: re-running with a recorded seed
	// reproduces that replication exactly.
	c := cfg
	c.Seed = b.Seeds[2]
	res, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, b.Runs[2]) {
		t.Fatal("replication not reproducible from its recorded seed")
	}
}

func TestRunBatchRejectsBadConfig(t *testing.T) {
	cfg := batchConfig(t, 9)
	if _, err := RunBatch(context.Background(), cfg, 0, 1); err == nil {
		t.Fatal("zero replications accepted")
	}
	cfg.Trace = &Trace{}
	if _, err := RunBatch(context.Background(), cfg, 2, 1); err == nil {
		t.Fatal("Trace accepted in a batch")
	}
}

func TestRunBatchCancellation(t *testing.T) {
	cfg := batchConfig(t, 11)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunBatch(ctx, cfg, 64, 4); err == nil {
		t.Fatal("cancelled batch returned no error")
	}
}

// TestRunBatchSeedZeroAliasesDefaultSeed pins the repo-wide seed
// convention on the Monte-Carlo batch: a Seed of 0 and the default
// seed 1 run the identical experiment.
func TestRunBatchSeedZeroAliasesDefaultSeed(t *testing.T) {
	cfg0 := batchConfig(t, 17)
	cfg0.Seed = 0
	cfg1 := cfg0
	cfg1.Seed = 1
	b0, err := RunBatch(context.Background(), cfg0, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	b1, err := RunBatch(context.Background(), cfg1, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(b0, b1) {
		t.Fatal("RunBatch seed 0 does not alias seed 1")
	}
	b2, err := RunBatch(context.Background(), cfg1, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(b1, b2) {
		t.Fatal("RunBatch is not reproducible for a fixed seed")
	}
}
