// Package sim simulates the pipelined execution of an interval mapping on
// the distributed platform, with optional Poisson transient-failure
// injection. It serves two purposes the paper's analytic evaluation
// cannot: (a) Monte-Carlo validation of the closed forms — success rates
// converge to Eq. (9), failure-free timings to Eqs. (5)/(6) — and (b)
// inspection of transient behaviour (queueing, pipeline fill) that the
// steady-state formulas abstract away.
//
// Execution model (§2.2): computations overlap with communications (each
// processor has a communication co-processor); a point-to-point link
// carries one message at a time, so consecutive data sets serialize on
// links exactly as they do on processors; data sets enter the system
// every Period time units; each boundary communication is mediated by the
// routing operation of §4.
//
// Two routing modes mirror the paper's accounting (see DESIGN.md):
//
//   - OneHop charges each boundary a single o/b hop, matching the latency
//     and period formulas (Eqs. 5–8).
//   - TwoHop charges replica→router and router→replica hops and samples
//     link failures on both, matching the reliability formula (Eq. 9).
package sim
