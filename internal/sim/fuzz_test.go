package sim

// FuzzSimSoA is the differential fuzz target of the flat-array engine:
// the fuzzer picks an instance shape (task count, platform size,
// partition, replica counts, routing, period, warm-up, failure
// injection) from the script bytes and the continuous values (works,
// output sizes, speeds, failure rates) from the seed, then requires the
// SoA engine and the scalar reference loop to agree bit-for-bit on
// every Result field. The seed corpus under testdata/fuzz/FuzzSimSoA
// replays in every ordinary `go test` run; CI additionally runs the
// target under -fuzz for a fixed budget (see .github/workflows/ci.yml).

import (
	"testing"

	"relpipe/internal/chain"
	"relpipe/internal/interval"
	"relpipe/internal/mapping"
	"relpipe/internal/platform"
	"relpipe/internal/rng"
)

// fuzzConfig decodes a simulation Config from a seed and a script. The
// decoding is total over scripts of length >= 8 + one byte per stage
// boundary/replica decision: structural choices come from the script
// (so the corpus can pin specific shapes), continuous values from the
// seed's RNG stream. ok is false when the script is too short.
func fuzzConfig(seed uint64, script []byte) (Config, bool) {
	if len(script) < 8 {
		return Config{}, false
	}
	r := rng.New(seed)
	nTasks := 1 + int(script[0])%5
	nProcs := 1 + int(script[1])%6
	maxReplicas := 1 + int(script[2])%3
	routing := RoutingMode(int(script[3]) % 2)
	inject := script[4]&1 == 1
	dataSets := 1 + int(script[5])%60
	period := 1 + float64(int(script[6])%40)/4
	warmUp := int(script[4]>>1) % dataSets
	script = script[7:]

	c := make(chain.Chain, nTasks)
	for i := range c {
		c[i] = chain.Task{Work: 1 + 19*r.Float64(), Out: 10 * r.Float64()}
	}
	c[nTasks-1].Out = 0

	procs := make([]platform.Processor, nProcs)
	for u := range procs {
		procs[u] = platform.Processor{Speed: 0.5 + 3.5*r.Float64(), FailRate: 0.1 * r.Float64()}
	}
	pl := platform.Platform{
		Procs:        procs,
		Bandwidth:    0.5 + 3.5*r.Float64(),
		LinkFailRate: 0.05 * r.Float64(),
		MaxReplicas:  maxReplicas,
	}

	// Partition: nStages <= min(nTasks, nProcs) so every interval can
	// hold at least one of the pairwise-disjoint processor sets; cut
	// points are steered by one script byte per boundary.
	maxStages := nTasks
	if nProcs < maxStages {
		maxStages = nProcs
	}
	nStages := 1 + int(script[0])%maxStages
	script = script[1:]
	ends := make([]int, nStages)
	next := 0
	for j := 0; j < nStages; j++ {
		// Leave room for the remaining nStages-1-j intervals.
		slack := nTasks - 1 - (nStages - 1 - j) - next
		take := 0
		if slack > 0 && len(script) > 0 {
			take = int(script[0]) % (slack + 1)
			script = script[1:]
		}
		next += take
		ends[j] = next
		next++
	}
	ends[nStages-1] = nTasks - 1

	// Replicas: hand out processors 0,1,2,… so sets stay disjoint,
	// reserving one processor for each remaining interval.
	ps := make([][]int, nStages)
	u := 0
	for j := range ps {
		budget := nProcs - u - (nStages - 1 - j)
		if budget > maxReplicas {
			budget = maxReplicas
		}
		k := 1
		if budget > 1 && len(script) > 0 {
			k = 1 + int(script[0])%budget
			script = script[1:]
		}
		for range k {
			ps[j] = append(ps[j], u)
			u++
		}
	}

	return Config{
		Chain:    c,
		Platform: pl,
		Mapping:  mapping.Mapping{Parts: interval.FromEnds(ends), Procs: ps},
		Period:   period,
		DataSets: dataSets,
		Seed:     seed,
		Routing:  routing,
		WarmUp:   warmUp,

		InjectFailures: inject,
	}, true
}

func FuzzSimSoA(f *testing.F) {
	f.Add(uint64(1), []byte("\x03\x04\x02\x00\x01\x20\x10\x01\x00\x01"))
	f.Add(uint64(42), []byte("\x02\x05\x03\x01\x07\x3b\x04\x02\x01\x02\x01"))
	f.Add(uint64(7), []byte("\x00\x00\x00\x00\x00\x00\x00\x00"))
	f.Fuzz(func(t *testing.T, seed uint64, script []byte) {
		cfg, ok := fuzzConfig(seed, script)
		if !ok {
			t.Skip("script too short")
		}
		if err := cfg.Mapping.Validate(cfg.Chain, cfg.Platform); err != nil {
			t.Fatalf("decoder built an invalid mapping: %v", err)
		}
		ref := cfg
		ref.ScalarReference = true
		got, err := Run(cfg)
		if err != nil {
			t.Fatalf("SoA run: %v", err)
		}
		want, err := Run(ref)
		if err != nil {
			t.Fatalf("scalar run: %v", err)
		}
		requireSameResult(t, "fuzz", got, want)
	})
}
