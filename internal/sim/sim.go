package sim

import (
	"errors"
	"fmt"
	"math"

	"relpipe/internal/chain"
	"relpipe/internal/des"
	"relpipe/internal/failure"
	"relpipe/internal/mapping"
	"relpipe/internal/platform"
	"relpipe/internal/progress"
	"relpipe/internal/rng"
)

// RoutingMode selects how boundary communications are charged.
type RoutingMode int

const (
	// OneHop charges one o/b hop per boundary with one link-failure
	// sample (sender side), matching Eqs. (5)–(8).
	OneHop RoutingMode = iota
	// TwoHop charges replica→router and router→replica hops with
	// independent failure samples, matching Eq. (9).
	TwoHop
)

// Config describes one simulation run.
type Config struct {
	Chain    chain.Chain
	Platform platform.Platform
	Mapping  mapping.Mapping
	// Period is the data-set injection period. It must be positive;
	// sustained operation requires Period ≥ the mapping's worst-case
	// period, but the simulator happily shows the queue growth if not.
	Period float64
	// DataSets is the number of data sets to push through.
	DataSets int
	// Seed drives all failure sampling; equal seeds give identical runs.
	Seed uint64
	// InjectFailures enables transient-failure sampling. When false the
	// run is deterministic and every data set succeeds.
	InjectFailures bool
	// Routing selects the boundary accounting (default OneHop).
	Routing RoutingMode
	// WarmUp data sets are excluded from the steady-state period
	// estimate (but still counted for success/latency).
	WarmUp int
	// Trace, when non-nil, records every compute/send/forward operation
	// for Gantt rendering and utilization analysis.
	Trace *Trace
	// Progress, when non-nil, receives (replicationsDone, replications)
	// from RunBatch as replications complete (see internal/progress).
	// Single Run ignores it. Reporting never influences the result.
	Progress progress.Func
	// ScalarReference forces the original closure-based per-replication
	// event loop (the des.Engine path in this file) instead of the
	// flat-array engine (soa.go). The two are bit-identical by contract
	// — same RNG draw order, same Result bits for every Config and seed
	// (the differential suite and FuzzSimSoA enforce per-field equality)
	// — so the knob never changes an answer; it exists as the reference
	// oracle for those checks and for the bench kernel measuring the
	// flat engine's speedup. Runs with a Trace attached always take the
	// scalar path (the trace hooks live there).
	ScalarReference bool
}

// Result aggregates a run.
type Result struct {
	DataSets    int
	Successes   int
	Latencies   []float64 // per successful data set, in injection order
	Completions []float64 // completion times of successful data sets
	// SteadyPeriod is the mean inter-completion time after warm-up
	// (NaN with fewer than two post-warm-up completions).
	SteadyPeriod float64
}

// SuccessRate returns the fraction of data sets fully processed.
func (r Result) SuccessRate() float64 {
	if r.DataSets == 0 {
		return math.NaN()
	}
	return float64(r.Successes) / float64(r.DataSets)
}

// FailureRate returns 1 - SuccessRate.
func (r Result) FailureRate() float64 { return 1 - r.SuccessRate() }

// MeanLatency returns the mean latency of successful data sets.
func (r Result) MeanLatency() float64 {
	if len(r.Latencies) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, l := range r.Latencies {
		s += l
	}
	return s / float64(len(r.Latencies))
}

// MaxLatency returns the largest observed latency.
func (r Result) MaxLatency() float64 {
	m := math.NaN()
	for i, l := range r.Latencies {
		if i == 0 || l > m {
			m = l
		}
	}
	return m
}

// linkKey identifies a serializing point-to-point channel.
type linkKey struct {
	boundary int // index of the interval whose output crosses the link
	src      int // sending replica index (-1 for the router side)
	dst      int // receiving replica index (-1 for the router side)
}

type runner struct {
	cfg      Config
	eng      *des.Engine
	rnd      *rng.Rand
	procFree map[int]float64
	linkFree map[linkKey]float64

	routerDone []map[int]bool // per boundary, data sets already forwarded
	done       []bool
	completion []float64

	compFail [][]float64 // [stage][replica] failure probability
	commFail []float64   // per boundary, per-hop failure probability
	commTime []float64   // per boundary, per-hop duration
	compTime [][]float64 // [stage][replica] compute duration
}

// Run executes the simulation and returns its result. The flat-array
// engine (soa.go) does the work unless a Trace is attached or
// cfg.ScalarReference asks for the reference event loop; both paths
// return bit-identical Results.
func Run(cfg Config) (Result, error) {
	if cfg.ScalarReference || cfg.Trace != nil {
		return runScalar(cfg)
	}
	return runSoA(cfg)
}

// runScalar is the original closure-based discrete-event loop, kept as
// the reference oracle (see Config.ScalarReference).
func runScalar(cfg Config) (Result, error) {
	if err := cfg.Chain.Validate(); err != nil {
		return Result{}, err
	}
	if err := cfg.Platform.Validate(); err != nil {
		return Result{}, err
	}
	if err := cfg.Mapping.Validate(cfg.Chain, cfg.Platform); err != nil {
		return Result{}, err
	}
	if cfg.Period <= 0 {
		return Result{}, errors.New("sim: Period must be positive")
	}
	if cfg.DataSets <= 0 {
		return Result{}, errors.New("sim: DataSets must be positive")
	}
	if cfg.WarmUp < 0 || cfg.WarmUp >= cfg.DataSets {
		cfg.WarmUp = 0
	}

	r := &runner{
		cfg:      cfg,
		eng:      des.New(),
		rnd:      rng.New(cfg.Seed),
		procFree: make(map[int]float64),
		linkFree: make(map[linkKey]float64),
		done:     make([]bool, cfg.DataSets),
	}
	m := cfg.Mapping
	nStages := len(m.Parts)
	r.completion = make([]float64, cfg.DataSets)
	r.routerDone = make([]map[int]bool, nStages) // boundary j = output of stage j
	for j := range r.routerDone {
		r.routerDone[j] = make(map[int]bool)
	}
	r.compFail = make([][]float64, nStages)
	r.compTime = make([][]float64, nStages)
	r.commFail = make([]float64, nStages)
	r.commTime = make([]float64, nStages)
	for j := 0; j < nStages; j++ {
		w := m.Parts.Work(cfg.Chain, j)
		out := m.Parts.Out(cfg.Chain, j)
		r.commTime[j] = cfg.Platform.CommTime(out)
		r.commFail[j] = failure.Prob(cfg.Platform.LinkFailRate, r.commTime[j])
		r.compFail[j] = make([]float64, len(m.Procs[j]))
		r.compTime[j] = make([]float64, len(m.Procs[j]))
		for i, u := range m.Procs[j] {
			r.compTime[j][i] = cfg.Platform.ComputeTime(u, w)
			r.compFail[j][i] = failure.Prob(cfg.Platform.Procs[u].FailRate, r.compTime[j][i])
		}
	}

	// Inject data sets at k·Period into every replica of stage 0.
	for d := 0; d < cfg.DataSets; d++ {
		d := d
		r.eng.At(float64(d)*cfg.Period, func() {
			for i := range m.Procs[0] {
				r.startCompute(0, i, d)
			}
		})
	}
	r.eng.Run()

	res := Result{DataSets: cfg.DataSets}
	var prev float64
	var interAcc, interN float64
	seen := 0
	for d := 0; d < cfg.DataSets; d++ {
		if !r.done[d] {
			continue
		}
		res.Successes++
		res.Latencies = append(res.Latencies, r.completion[d]-float64(d)*cfg.Period)
		res.Completions = append(res.Completions, r.completion[d])
		if d >= cfg.WarmUp {
			if seen > 0 {
				interAcc += r.completion[d] - prev
				interN++
			}
			prev = r.completion[d]
			seen++
		}
	}
	if interN > 0 {
		res.SteadyPeriod = interAcc / interN
	} else {
		res.SteadyPeriod = math.NaN()
	}
	return res, nil
}

// fails samples one transient failure of probability p (always false when
// injection is disabled).
func (r *runner) fails(p float64) bool {
	return r.cfg.InjectFailures && r.rnd.Bernoulli(p)
}

// startCompute queues data set d on replica i of stage j.
func (r *runner) startCompute(j, i, d int) {
	u := r.cfg.Mapping.Procs[j][i]
	start := math.Max(r.eng.Now(), r.procFree[u])
	finish := start + r.compTime[j][i]
	r.procFree[u] = finish
	r.eng.At(finish, func() {
		failed := r.fails(r.compFail[j][i])
		r.cfg.Trace.add(Op{
			Kind: OpCompute, Stage: j, Replica: i, Proc: u,
			DataSet: d, Start: start, End: finish, Failed: failed,
		})
		if failed {
			return // the result of this data set is lost on this replica
		}
		r.emit(j, i, d)
	})
}

// emit handles a successful computation of data set d by replica i of
// stage j: completion at the last stage, or transmission of the interval
// output towards stage j+1.
func (r *runner) emit(j, i, d int) {
	nStages := len(r.cfg.Mapping.Parts)
	if j == nStages-1 {
		if !r.done[d] {
			r.done[d] = true
			r.completion[d] = r.eng.Now()
		}
		return
	}
	// Send towards the boundary-j router on this replica's own channel.
	k := linkKey{boundary: j, src: i, dst: -1}
	start := math.Max(r.eng.Now(), r.linkFree[k])
	arrive := start + r.commTime[j]
	r.linkFree[k] = arrive
	r.eng.At(arrive, func() {
		failed := r.fails(r.commFail[j])
		r.cfg.Trace.add(Op{
			Kind: OpSend, Stage: j, Replica: i, Proc: -1,
			DataSet: d, Start: start, End: arrive, Failed: failed,
		})
		if failed {
			return // the message was corrupted in transit
		}
		r.routerForward(j, d)
	})
}

// routerForward delivers data set d across boundary j the first time a
// replica result reaches the router; later arrivals are ignored.
func (r *runner) routerForward(j, d int) {
	if r.routerDone[j][d] {
		return
	}
	r.routerDone[j][d] = true
	next := j + 1
	for i := range r.cfg.Mapping.Procs[next] {
		i := i
		switch r.cfg.Routing {
		case OneHop:
			// The boundary was already charged on the sender side;
			// delivery is immediate.
			r.startCompute(next, i, d)
		case TwoHop:
			k := linkKey{boundary: j, src: -1, dst: i}
			start := math.Max(r.eng.Now(), r.linkFree[k])
			arrive := start + r.commTime[j]
			r.linkFree[k] = arrive
			r.eng.At(arrive, func() {
				failed := r.fails(r.commFail[j])
				r.cfg.Trace.add(Op{
					Kind: OpForward, Stage: j, Replica: i, Proc: -1,
					DataSet: d, Start: start, End: arrive, Failed: failed,
				})
				if failed {
					return
				}
				r.startCompute(next, i, d)
			})
		default:
			panic(fmt.Sprintf("sim: unknown routing mode %d", r.cfg.Routing))
		}
	}
}

// AnalyticFailProbOneHop returns the per-data-set failure probability the
// OneHop simulator converges to: like Eq. (9) but with a single
// communication factor per boundary (sender side only).
func AnalyticFailProbOneHop(c chain.Chain, pl platform.Platform, m mapping.Mapping) float64 {
	logRel := 0.0
	for j := range m.Parts {
		w := m.Parts.Work(c, j)
		out := m.Parts.Out(c, j)
		fOut := failure.Prob(pl.LinkFailRate, pl.CommTime(out))
		stage := 1.0
		for _, u := range m.Procs[j] {
			fComp := failure.Prob(pl.Procs[u].FailRate, pl.ComputeTime(u, w))
			stage *= failure.Serial(fComp, fOut)
		}
		logRel += failure.LogRel(stage)
	}
	return failure.FromLogRel(logRel)
}
