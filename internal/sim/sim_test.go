package sim

import (
	"math"
	"testing"

	"relpipe/internal/chain"
	"relpipe/internal/interval"
	"relpipe/internal/mapping"
	"relpipe/internal/platform"
)

// pipeline3 returns a 3-stage single-replica pipeline on a failure-free
// platform for timing tests.
func pipeline3() (chain.Chain, platform.Platform, mapping.Mapping) {
	c := chain.Chain{{Work: 10, Out: 2}, {Work: 6, Out: 4}, {Work: 8, Out: 0}}
	pl := platform.Homogeneous(3, 1, 0, 1, 0, 3)
	m := mapping.Mapping{
		Parts: interval.Finest(3),
		Procs: [][]int{{0}, {1}, {2}},
	}
	return c, pl, m
}

func TestSimMatchesAnalyticTiming(t *testing.T) {
	c, pl, m := pipeline3()
	ev, err := mapping.Evaluate(c, pl, m)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Chain: c, Platform: pl, Mapping: m,
		Period: ev.WorstPeriod, DataSets: 50, Routing: OneHop, WarmUp: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Successes != 50 {
		t.Fatalf("successes = %d, want 50 (failure-free)", res.Successes)
	}
	// Eq. (7): WL = (10+2) + (6+4) + (8+0) = 30.
	if math.Abs(res.Latencies[0]-ev.WorstLatency) > 1e-9 {
		t.Fatalf("first latency = %v, want WL = %v", res.Latencies[0], ev.WorstLatency)
	}
	// With P = WP the pipeline keeps up: all latencies equal.
	for d, l := range res.Latencies {
		if math.Abs(l-ev.WorstLatency) > 1e-9 {
			t.Fatalf("latency[%d] = %v, want %v", d, l, ev.WorstLatency)
		}
	}
	// Completions every P.
	if math.Abs(res.SteadyPeriod-ev.WorstPeriod) > 1e-9 {
		t.Fatalf("steady period = %v, want %v", res.SteadyPeriod, ev.WorstPeriod)
	}
}

func TestSimSaturatedThroughputIsWorstPeriod(t *testing.T) {
	// Inject far faster than the pipeline can drain: the steady-state
	// output period must converge to WP (Eq. 6/8), here the compute
	// bottleneck 10.
	c, pl, m := pipeline3()
	ev, _ := mapping.Evaluate(c, pl, m)
	res, err := Run(Config{
		Chain: c, Platform: pl, Mapping: m,
		Period: ev.WorstPeriod / 20, DataSets: 300, Routing: OneHop, WarmUp: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.SteadyPeriod-ev.WorstPeriod) > 1e-6 {
		t.Fatalf("saturated steady period = %v, want WP = %v", res.SteadyPeriod, ev.WorstPeriod)
	}
	// Queueing: latencies must grow monotonically under overload.
	if res.Latencies[len(res.Latencies)-1] <= res.Latencies[0] {
		t.Fatal("overloaded pipeline shows no queue growth")
	}
}

func TestSimCommBoundThroughput(t *testing.T) {
	// A boundary communication (o/b = 12) dominates every compute time:
	// the saturated output period must equal it.
	c := chain.Chain{{Work: 5, Out: 12}, {Work: 5, Out: 0}}
	pl := platform.Homogeneous(2, 1, 0, 1, 0, 3)
	m := mapping.Mapping{Parts: interval.Finest(2), Procs: [][]int{{0}, {1}}}
	ev, _ := mapping.Evaluate(c, pl, m)
	if ev.WorstPeriod != 12 {
		t.Fatalf("WP = %v, want comm-bound 12", ev.WorstPeriod)
	}
	res, err := Run(Config{
		Chain: c, Platform: pl, Mapping: m,
		Period: 1, DataSets: 200, Routing: OneHop, WarmUp: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.SteadyPeriod-12) > 1e-6 {
		t.Fatalf("steady period = %v, want 12", res.SteadyPeriod)
	}
}

func TestSimFastestReplicaWinsLatency(t *testing.T) {
	// Replicated stage on processors of speeds 4 and 1: the first
	// data set's latency follows the fastest replica (Eq. 3 as f→0).
	c := chain.Chain{{Work: 8, Out: 0}}
	pl := platform.Platform{
		Procs:        []platform.Processor{{Speed: 1, FailRate: 0}, {Speed: 4, FailRate: 0}},
		Bandwidth:    1,
		LinkFailRate: 0,
		MaxReplicas:  2,
	}
	m := mapping.Mapping{Parts: interval.Single(1), Procs: [][]int{{0, 1}}}
	res, err := Run(Config{
		Chain: c, Platform: pl, Mapping: m, Period: 10, DataSets: 5, Routing: OneHop,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Latencies[0]-2) > 1e-9 { // 8/4
		t.Fatalf("latency = %v, want 2 (fastest replica)", res.Latencies[0])
	}
}

func TestSimTwoHopAddsLatency(t *testing.T) {
	c, pl, m := pipeline3()
	one, err := Run(Config{Chain: c, Platform: pl, Mapping: m, Period: 100, DataSets: 3, Routing: OneHop})
	if err != nil {
		t.Fatal(err)
	}
	two, err := Run(Config{Chain: c, Platform: pl, Mapping: m, Period: 100, DataSets: 3, Routing: TwoHop})
	if err != nil {
		t.Fatal(err)
	}
	// TwoHop charges each boundary twice: +2 and +4 here.
	if math.Abs((two.Latencies[0]-one.Latencies[0])-6) > 1e-9 {
		t.Fatalf("two-hop extra latency = %v, want 6", two.Latencies[0]-one.Latencies[0])
	}
}

// mcSetup builds a lossy replicated mapping for Monte-Carlo tests: rates
// large enough that failures are common.
func mcSetup() (chain.Chain, platform.Platform, mapping.Mapping) {
	c := chain.Chain{{Work: 10, Out: 5}, {Work: 14, Out: 3}, {Work: 8, Out: 0}}
	pl := platform.Homogeneous(6, 1, 2e-2, 1, 1e-2, 2)
	m := mapping.Mapping{
		Parts: interval.Finest(3),
		Procs: [][]int{{0, 1}, {2, 3}, {4, 5}},
	}
	return c, pl, m
}

func TestSimMatchesAnalyticReliability(t *testing.T) {
	// V1: the TwoHop success rate converges to Eq. (9).
	c, pl, m := mcSetup()
	ev, err := mapping.Evaluate(c, pl, m)
	if err != nil {
		t.Fatal(err)
	}
	const n = 40000
	res, err := Run(Config{
		Chain: c, Platform: pl, Mapping: m,
		Period: 20, DataSets: n, Seed: 12345, InjectFailures: true, Routing: TwoHop,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := ev.FailProb
	got := res.FailureRate()
	sigma := math.Sqrt(want * (1 - want) / n)
	if math.Abs(got-want) > 5*sigma {
		t.Fatalf("MC failure rate %v vs Eq.(9) %v: off by more than 5σ (σ=%v)", got, want, sigma)
	}
}

func TestSimMatchesAnalyticReliabilityOneHop(t *testing.T) {
	c, pl, m := mcSetup()
	want := AnalyticFailProbOneHop(c, pl, m)
	const n = 40000
	res, err := Run(Config{
		Chain: c, Platform: pl, Mapping: m,
		Period: 20, DataSets: n, Seed: 777, InjectFailures: true, Routing: OneHop,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := res.FailureRate()
	sigma := math.Sqrt(want * (1 - want) / n)
	if math.Abs(got-want) > 5*sigma {
		t.Fatalf("MC one-hop failure rate %v vs analytic %v: off by more than 5σ", got, want)
	}
}

func TestReplicationReducesObservedFailures(t *testing.T) {
	c := chain.Chain{{Work: 20, Out: 0}}
	pl := platform.Homogeneous(3, 1, 2e-2, 1, 0, 3)
	single := mapping.Mapping{Parts: interval.Single(1), Procs: [][]int{{0}}}
	triple := mapping.Mapping{Parts: interval.Single(1), Procs: [][]int{{0, 1, 2}}}
	const n = 20000
	rs, err := Run(Config{Chain: c, Platform: pl, Mapping: single, Period: 25, DataSets: n, Seed: 1, InjectFailures: true})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := Run(Config{Chain: c, Platform: pl, Mapping: triple, Period: 25, DataSets: n, Seed: 1, InjectFailures: true})
	if err != nil {
		t.Fatal(err)
	}
	if rt.FailureRate() >= rs.FailureRate() {
		t.Fatalf("triple replication failure %v >= single %v", rt.FailureRate(), rs.FailureRate())
	}
}

func TestSimDeterministicBySeed(t *testing.T) {
	c, pl, m := mcSetup()
	cfg := Config{Chain: c, Platform: pl, Mapping: m, Period: 20, DataSets: 2000, Seed: 99, InjectFailures: true, Routing: TwoHop}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Successes != b.Successes || len(a.Latencies) != len(b.Latencies) {
		t.Fatal("same seed produced different runs")
	}
	for i := range a.Latencies {
		if a.Latencies[i] != b.Latencies[i] {
			t.Fatal("same seed produced different latencies")
		}
	}
	cfg.Seed = 100
	c2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c2.Successes == a.Successes {
		t.Log("different seeds coincidentally agree on success count (acceptable)")
	}
}

func TestSimConfigValidation(t *testing.T) {
	c, pl, m := pipeline3()
	if _, err := Run(Config{Chain: c, Platform: pl, Mapping: m, Period: 0, DataSets: 5}); err == nil {
		t.Fatal("accepted Period=0")
	}
	if _, err := Run(Config{Chain: c, Platform: pl, Mapping: m, Period: 5, DataSets: 0}); err == nil {
		t.Fatal("accepted DataSets=0")
	}
	bad := m.Clone()
	bad.Procs[0] = nil
	if _, err := Run(Config{Chain: c, Platform: pl, Mapping: bad, Period: 5, DataSets: 5}); err == nil {
		t.Fatal("accepted invalid mapping")
	}
}

func TestResultHelpers(t *testing.T) {
	r := Result{DataSets: 4, Successes: 3, Latencies: []float64{5, 7, 6}}
	if r.SuccessRate() != 0.75 || r.FailureRate() != 0.25 {
		t.Fatalf("rates = %v/%v", r.SuccessRate(), r.FailureRate())
	}
	if r.MeanLatency() != 6 {
		t.Fatalf("MeanLatency = %v", r.MeanLatency())
	}
	if r.MaxLatency() != 7 {
		t.Fatalf("MaxLatency = %v", r.MaxLatency())
	}
	empty := Result{}
	if !math.IsNaN(empty.SuccessRate()) || !math.IsNaN(empty.MeanLatency()) || !math.IsNaN(empty.MaxLatency()) {
		t.Fatal("empty result helpers must return NaN")
	}
}

func BenchmarkSimulator(b *testing.B) {
	c, pl, m := mcSetup()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := Run(Config{
			Chain: c, Platform: pl, Mapping: m,
			Period: 20, DataSets: 1000, Seed: uint64(i), InjectFailures: true, Routing: TwoHop,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}
