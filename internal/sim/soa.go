package sim

// This file is the flat-array (struct-of-arrays) Monte-Carlo core: the
// default execution engine behind Run and RunBatch. The original
// closure-based des.Engine loop (sim.go) survives unchanged as the
// reference oracle behind Config.ScalarReference.
//
// Why a second engine: the scalar loop pays one closure allocation and
// one interface boxing per event, hashes two maps (procFree, linkFree)
// per scheduling decision, and rebuilds every per-stage table for every
// replication. The flat engine keeps all of that in contiguous arrays —
// a fixed-size event record in a hand-rolled binary heap, resource
// release times in flat float64 slices indexed by precomputed replica
// offsets, router/done flags in flat bool slices — and shares the
// per-segment tables (compute/communication durations and failure
// probabilities) across every replication of a batch, so a worker
// advances its whole shard of replications through one warm,
// cache-resident state block.
//
// Determinism contract: the engine replays the scalar loop's event
// schedule exactly. Events are ordered by (time, scheduling sequence),
// the same strict total order des.Engine uses, and every RNG draw
// happens inside an event handler — so equal seeds give bit-identical
// Results whichever engine runs (the differential suite and FuzzSimSoA
// enforce per-field equality). Replication-level vectorization stops at
// that contract deliberately: a failed draw prunes downstream events
// and shifts later resource-release times, making the event schedule
// outcome-dependent per replication, so true cross-replication lockstep
// would change draw order. The batching axis is shared tables plus
// per-worker state reuse instead.

import (
	"context"
	"errors"
	"fmt"
	"math"

	"relpipe/internal/failure"
	"relpipe/internal/rng"
)

// Event kinds of the flat engine, mirroring the scalar loop's closures:
// data-set injection, compute finish (draw + emit), sender-side link
// arrival (draw + router), router-side link arrival (TwoHop only: draw
// + next-stage compute).
const (
	soaInject uint8 = iota
	soaCompute
	soaSend
	soaFwd
)

// soaEvent is one pending event: fixed-size, no closures, no interface
// boxing. seq is the per-replication scheduling sequence — the same
// stable tie-break des.Engine applies — reset to 0 for every
// replication.
type soaEvent struct {
	t    float64
	seq  int64
	d    int32 // data set
	j    int32 // stage (compute) or boundary (send/fwd)
	i    int32 // replica index within the stage
	kind uint8
}

// soaTables is the read-only per-batch precomputation shared by every
// replication (and, in RunBatch, by every worker): segment durations
// and failure probabilities flattened over replica offsets, plus the
// validated run parameters. Pure function of the Config minus its seed.
type soaTables struct {
	nStages  int
	procs    [][]int   // Mapping.Procs: replica processor ids per stage
	offset   []int     // offset[j] = first flat replica index of stage j; len nStages+1
	total    int       // total replicas (== offset[nStages])
	procN    int       // platform processor count (procFree size)
	compTime []float64 // flat [offset[j]+i]
	compFail []float64 // flat [offset[j]+i]
	commTime []float64 // per boundary j
	commFail []float64 // per boundary j
	period   float64
	dataSets int
	warmUp   int
	routing  RoutingMode
	inject   bool
}

// newSoaTables validates cfg exactly like the scalar Run and builds the
// shared tables.
func newSoaTables(cfg Config) (*soaTables, error) {
	if err := cfg.Chain.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Platform.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Mapping.Validate(cfg.Chain, cfg.Platform); err != nil {
		return nil, err
	}
	if cfg.Period <= 0 {
		return nil, errors.New("sim: Period must be positive")
	}
	if cfg.DataSets <= 0 {
		return nil, errors.New("sim: DataSets must be positive")
	}
	if cfg.WarmUp < 0 || cfg.WarmUp >= cfg.DataSets {
		cfg.WarmUp = 0
	}
	m := cfg.Mapping
	nStages := len(m.Parts)
	t := &soaTables{
		nStages:  nStages,
		procs:    m.Procs,
		offset:   make([]int, nStages+1),
		procN:    cfg.Platform.P(),
		commTime: make([]float64, nStages),
		commFail: make([]float64, nStages),
		period:   cfg.Period,
		dataSets: cfg.DataSets,
		warmUp:   cfg.WarmUp,
		routing:  cfg.Routing,
		inject:   cfg.InjectFailures,
	}
	for j := 0; j < nStages; j++ {
		t.offset[j+1] = t.offset[j] + len(m.Procs[j])
	}
	t.total = t.offset[nStages]
	t.compTime = make([]float64, t.total)
	t.compFail = make([]float64, t.total)
	for j := 0; j < nStages; j++ {
		w := m.Parts.Work(cfg.Chain, j)
		out := m.Parts.Out(cfg.Chain, j)
		t.commTime[j] = cfg.Platform.CommTime(out)
		t.commFail[j] = failure.Prob(cfg.Platform.LinkFailRate, t.commTime[j])
		for i, u := range m.Procs[j] {
			t.compTime[t.offset[j]+i] = cfg.Platform.ComputeTime(u, w)
			t.compFail[t.offset[j]+i] = failure.Prob(cfg.Platform.Procs[u].FailRate, t.compTime[t.offset[j]+i])
		}
	}
	return t, nil
}

// soaEngine is the reusable per-worker state block: one event heap and
// one set of flat resource/outcome arrays, reset (not reallocated)
// between replications so a shard of replications runs allocation-free
// after the first.
type soaEngine struct {
	t   *soaTables
	ctx context.Context // polled inside the event loop; nil = no polling
	rnd *rng.Rand

	heap []soaEvent
	seq  int64

	procFree   []float64 // by processor id: next instant the proc is free
	sendFree   []float64 // by flat replica index: sender-side channel free
	fwdFree    []float64 // by flat replica index: router-side channel free (TwoHop)
	routerDone []bool    // [boundary*dataSets + d]: first arrival already forwarded
	done       []bool    // per data set
	completion []float64 // per data set
}

func newSoaEngine(t *soaTables, ctx context.Context) *soaEngine {
	return &soaEngine{
		t:          t,
		ctx:        ctx,
		procFree:   make([]float64, t.procN),
		sendFree:   make([]float64, t.total),
		fwdFree:    make([]float64, t.total),
		routerDone: make([]bool, t.nStages*t.dataSets),
		done:       make([]bool, t.dataSets),
		completion: make([]float64, t.dataSets),
	}
}

// push schedules an event, assigning the next sequence number — the
// insertion-order tie-break that reproduces des.Engine's stable event
// order.
func (e *soaEngine) push(t float64, kind uint8, j, i, d int) {
	h := append(e.heap, soaEvent{t: t, seq: e.seq, d: int32(d), j: int32(j), i: int32(i), kind: kind})
	e.seq++
	c := len(h) - 1
	for c > 0 {
		p := (c - 1) / 2
		if !soaLess(h[c], h[p]) {
			break
		}
		h[c], h[p] = h[p], h[c]
		c = p
	}
	e.heap = h
}

// pop removes and returns the earliest event under the (t, seq) order.
func (e *soaEngine) pop() soaEvent {
	h := e.heap
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	p := 0
	for {
		c := 2*p + 1
		if c >= n {
			break
		}
		if r := c + 1; r < n && soaLess(h[r], h[c]) {
			c = r
		}
		if !soaLess(h[c], h[p]) {
			break
		}
		h[p], h[c] = h[c], h[p]
		p = c
	}
	e.heap = h
	return top
}

func soaLess(a, b soaEvent) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	return a.seq < b.seq
}

// fails samples one transient failure of probability p — the same
// short-circuits as the scalar runner's (no draw when injection is off
// or p is degenerate), so the RNG streams stay aligned.
func (e *soaEngine) fails(p float64) bool {
	return e.t.inject && e.rnd.Bernoulli(p)
}

// startCompute books data set d on replica i of stage j: the processor
// is reserved at scheduling time (exactly like the scalar loop), the
// finish event draws the failure.
func (e *soaEngine) startCompute(now float64, j, i, d int) {
	u := e.t.procs[j][i]
	start := math.Max(now, e.procFree[u])
	finish := start + e.t.compTime[e.t.offset[j]+i]
	e.procFree[u] = finish
	e.push(finish, soaCompute, j, i, d)
}

// routerForward delivers data set d across boundary j on its first
// successful arrival; later arrivals are ignored.
func (e *soaEngine) routerForward(now float64, j, d int) {
	idx := j*e.t.dataSets + d
	if e.routerDone[idx] {
		return
	}
	e.routerDone[idx] = true
	next := j + 1
	if e.t.routing == OneHop {
		// The boundary was charged on the sender side; delivery is
		// immediate.
		for i := range e.t.procs[next] {
			e.startCompute(now, next, i, d)
		}
		return
	}
	if e.t.routing != TwoHop {
		// Lazily, like the scalar loop: a run that never crosses a
		// boundary never observes a bogus mode.
		panic(fmt.Sprintf("sim: unknown routing mode %d", e.t.routing))
	}
	for i := range e.t.procs[next] {
		fi := e.t.offset[next] + i
		start := math.Max(now, e.fwdFree[fi])
		arrive := start + e.t.commTime[j]
		e.fwdFree[fi] = arrive
		e.push(arrive, soaFwd, j, i, d)
	}
}

// run executes one replication with the given seed and returns its
// Result, bit-identical to the scalar Run of the same Config and seed.
// The context (when non-nil) is polled every 1024 events so a
// cancellation lands mid-replication, not just between replications.
func (e *soaEngine) run(seed uint64) (Result, error) {
	t := e.t
	e.rnd = rng.New(seed)
	e.heap = e.heap[:0]
	e.seq = 0
	clear(e.procFree)
	clear(e.sendFree)
	clear(e.fwdFree)
	clear(e.routerDone)
	clear(e.done)
	clear(e.completion)

	for d := 0; d < t.dataSets; d++ {
		e.push(float64(d)*t.period, soaInject, 0, 0, d)
	}
	last := t.nStages - 1
	var steps int64
	for len(e.heap) > 0 {
		ev := e.pop()
		if steps++; steps&1023 == 0 && e.ctx != nil {
			if err := e.ctx.Err(); err != nil {
				return Result{}, err
			}
		}
		now := ev.t
		j, i, d := int(ev.j), int(ev.i), int(ev.d)
		switch ev.kind {
		case soaInject:
			for i := range t.procs[0] {
				e.startCompute(now, 0, i, d)
			}
		case soaCompute:
			if e.fails(t.compFail[t.offset[j]+i]) {
				continue // the result is lost on this replica
			}
			if j == last {
				if !e.done[d] {
					e.done[d] = true
					e.completion[d] = now
				}
				continue
			}
			si := t.offset[j] + i
			start := math.Max(now, e.sendFree[si])
			arrive := start + t.commTime[j]
			e.sendFree[si] = arrive
			e.push(arrive, soaSend, j, i, d)
		case soaSend:
			if e.fails(t.commFail[j]) {
				continue // corrupted in transit
			}
			e.routerForward(now, j, d)
		case soaFwd:
			if e.fails(t.commFail[j]) {
				continue
			}
			e.startCompute(now, j+1, i, d)
		}
	}
	return e.aggregate(), nil
}

// aggregate folds the outcome arrays into a Result with exactly the
// scalar loop's fold order (latency append order, steady-period
// accumulation), so aggregates match bit for bit.
func (e *soaEngine) aggregate() Result {
	t := e.t
	res := Result{DataSets: t.dataSets}
	var prev float64
	var interAcc, interN float64
	seen := 0
	for d := 0; d < t.dataSets; d++ {
		if !e.done[d] {
			continue
		}
		res.Successes++
		res.Latencies = append(res.Latencies, e.completion[d]-float64(d)*t.period)
		res.Completions = append(res.Completions, e.completion[d])
		if d >= t.warmUp {
			if seen > 0 {
				interAcc += e.completion[d] - prev
				interN++
			}
			prev = e.completion[d]
			seen++
		}
	}
	if interN > 0 {
		res.SteadyPeriod = interAcc / interN
	} else {
		res.SteadyPeriod = math.NaN()
	}
	return res
}

// runSoA is the single-run entry of the flat engine (Run dispatches
// here unless a trace or the scalar reference was requested).
func runSoA(cfg Config) (Result, error) {
	t, err := newSoaTables(cfg)
	if err != nil {
		return Result{}, err
	}
	return newSoaEngine(t, nil).run(cfg.Seed)
}

// copyResult deep-copies a Result so batch replications sharing a
// deterministic outcome still own their slices.
func copyResult(r Result) Result {
	c := r
	c.Latencies = append([]float64(nil), r.Latencies...)
	c.Completions = append([]float64(nil), r.Completions...)
	return c
}
