package sim

// Differential suite pinning the flat-array engine (soa.go) to the
// scalar reference event loop (sim.go). The contract is bit-identity:
// for every Config and seed the two engines draw the same RNG stream in
// the same order and produce per-field identical Results, so every
// comparison here is exact (Float64bits, never tolerances). FuzzSimSoA
// (fuzz_test.go) extends the same check to fuzzer-chosen instances.

import (
	"context"
	"math"
	"testing"

	"relpipe/internal/chain"
	"relpipe/internal/interval"
	"relpipe/internal/mapping"
	"relpipe/internal/platform"
)

// hetSetup returns a replicated mapping on a heterogeneous platform
// (distinct speeds and failure rates per processor) so the differential
// suite exercises per-replica compute tables that actually differ.
func hetSetup() (chain.Chain, platform.Platform, mapping.Mapping) {
	c := chain.Chain{{Work: 12, Out: 4}, {Work: 7, Out: 2}, {Work: 9, Out: 6}, {Work: 5, Out: 0}}
	pl := platform.Platform{
		Procs: []platform.Processor{
			{Speed: 1, FailRate: 5e-2},
			{Speed: 2, FailRate: 1e-2},
			{Speed: 4, FailRate: 2e-2},
			{Speed: 1.5, FailRate: 3e-2},
		},
		Bandwidth:    2,
		LinkFailRate: 8e-3,
		MaxReplicas:  2,
	}
	m := mapping.Mapping{
		Parts: interval.FromEnds([]int{1, 3}),
		Procs: [][]int{{0, 2}, {1, 3}},
	}
	return c, pl, m
}

// bitsEq reports exact bit equality, treating any NaN payloads as equal
// (both engines produce NaN only via math.NaN(), but the comparison
// should not depend on that).
func bitsEq(a, b float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	return math.Float64bits(a) == math.Float64bits(b)
}

// requireSameResult asserts per-field bit-identity of two Results.
func requireSameResult(t *testing.T, label string, got, want Result) {
	t.Helper()
	if got.DataSets != want.DataSets {
		t.Fatalf("%s: DataSets = %d, want %d", label, got.DataSets, want.DataSets)
	}
	if got.Successes != want.Successes {
		t.Fatalf("%s: Successes = %d, want %d", label, got.Successes, want.Successes)
	}
	if len(got.Latencies) != len(want.Latencies) {
		t.Fatalf("%s: len(Latencies) = %d, want %d", label, len(got.Latencies), len(want.Latencies))
	}
	for i := range got.Latencies {
		if !bitsEq(got.Latencies[i], want.Latencies[i]) {
			t.Fatalf("%s: Latencies[%d] = %v, want %v", label, i, got.Latencies[i], want.Latencies[i])
		}
	}
	if len(got.Completions) != len(want.Completions) {
		t.Fatalf("%s: len(Completions) = %d, want %d", label, len(got.Completions), len(want.Completions))
	}
	for i := range got.Completions {
		if !bitsEq(got.Completions[i], want.Completions[i]) {
			t.Fatalf("%s: Completions[%d] = %v, want %v", label, i, got.Completions[i], want.Completions[i])
		}
	}
	if !bitsEq(got.SteadyPeriod, want.SteadyPeriod) {
		t.Fatalf("%s: SteadyPeriod = %v, want %v", label, got.SteadyPeriod, want.SteadyPeriod)
	}
}

// soaCase is one Config the differential tests sweep.
type soaCase struct {
	name string
	cfg  Config
}

// soaCases builds the Config matrix: homogeneous and heterogeneous
// platforms, both routing modes, failure injection on and off, warm-up
// windows, and a period tight enough to queue data sets on processors.
func soaCases() []soaCase {
	cs, pls, ms := pipeline3()
	ch, plh, mh := mcSetup()
	ce, ple, me := hetSetup()
	return []soaCase{
		{"deterministic/onehop", Config{
			Chain: cs, Platform: pls, Mapping: ms,
			Period: 12, DataSets: 25, Seed: 1,
		}},
		{"deterministic/tight-period", Config{
			Chain: cs, Platform: pls, Mapping: ms,
			Period: 3, DataSets: 40, Seed: 1, WarmUp: 5,
		}},
		{"lossy/onehop", Config{
			Chain: ch, Platform: plh, Mapping: mh,
			Period: 20, DataSets: 300, Seed: 7, InjectFailures: true,
		}},
		{"lossy/twohop", Config{
			Chain: ch, Platform: plh, Mapping: mh,
			Period: 20, DataSets: 300, Seed: 7, InjectFailures: true,
			Routing: TwoHop, WarmUp: 10,
		}},
		{"het/onehop", Config{
			Chain: ce, Platform: ple, Mapping: me,
			Period: 15, DataSets: 400, Seed: 99, InjectFailures: true,
		}},
		{"het/twohop-tight", Config{
			Chain: ce, Platform: ple, Mapping: me,
			Period: 6, DataSets: 400, Seed: 99, InjectFailures: true,
			Routing: TwoHop, WarmUp: 20,
		}},
	}
}

func TestSoAMatchesScalarRun(t *testing.T) {
	for _, tc := range soaCases() {
		t.Run(tc.name, func(t *testing.T) {
			soa := tc.cfg
			soa.ScalarReference = false
			ref := tc.cfg
			ref.ScalarReference = true

			got, err := Run(soa)
			if err != nil {
				t.Fatal(err)
			}
			want, err := Run(ref)
			if err != nil {
				t.Fatal(err)
			}
			requireSameResult(t, "SoA vs scalar", got, want)

			// Distinct seeds on a lossy run must actually diverge, or the
			// comparison above proves nothing.
			if tc.cfg.InjectFailures {
				soa2 := soa
				soa2.Seed = soa.Seed + 1
				other, err := Run(soa2)
				if err != nil {
					t.Fatal(err)
				}
				if other.Successes == got.Successes && bitsEq(other.SteadyPeriod, got.SteadyPeriod) &&
					len(other.Latencies) == len(got.Latencies) {
					same := true
					for i := range other.Latencies {
						if !bitsEq(other.Latencies[i], got.Latencies[i]) {
							same = false
							break
						}
					}
					if same {
						t.Fatal("runs with different seeds produced identical results; seed is not reaching the engine")
					}
				}
			}
		})
	}
}

func TestSoABatchMatchesScalarBatch(t *testing.T) {
	const replications = 12
	for _, tc := range soaCases() {
		t.Run(tc.name, func(t *testing.T) {
			ref := tc.cfg
			ref.ScalarReference = true
			want, err := RunBatch(context.Background(), ref, replications, 1)
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range []int{1, 2, 8} {
				got, err := RunBatch(context.Background(), tc.cfg, replications, p)
				if err != nil {
					t.Fatal(err)
				}
				if len(got.Seeds) != len(want.Seeds) {
					t.Fatalf("P=%d: len(Seeds) = %d, want %d", p, len(got.Seeds), len(want.Seeds))
				}
				for r := range got.Seeds {
					if got.Seeds[r] != want.Seeds[r] {
						t.Fatalf("P=%d: Seeds[%d] = %d, want %d", p, r, got.Seeds[r], want.Seeds[r])
					}
				}
				if len(got.Runs) != len(want.Runs) {
					t.Fatalf("P=%d: len(Runs) = %d, want %d", p, len(got.Runs), len(want.Runs))
				}
				for r := range got.Runs {
					requireSameResult(t, tc.name, got.Runs[r], want.Runs[r])
				}
				// Aggregates follow from per-field identity, but pin them
				// too: they are what callers actually consume.
				if !bitsEq(got.SuccessRate(), want.SuccessRate()) ||
					!bitsEq(got.MeanLatency(), want.MeanLatency()) ||
					!bitsEq(got.MaxLatency(), want.MaxLatency()) ||
					!bitsEq(got.MeanSteadyPeriod(), want.MeanSteadyPeriod()) {
					t.Fatalf("P=%d: batch aggregates diverge from scalar reference", p)
				}
			}
		})
	}
}

// TestSoABatchNoInjectCopies pins the failure-free fast path: every
// replication is the same outcome, delivered as independent slices so a
// caller mutating one run cannot corrupt its siblings.
func TestSoABatchNoInjectCopies(t *testing.T) {
	c, pl, m := pipeline3()
	cfg := Config{Chain: c, Platform: pl, Mapping: m, Period: 12, DataSets: 10, Seed: 1}
	b, err := RunBatch(context.Background(), cfg, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	ref := cfg
	ref.ScalarReference = true
	want, err := Run(ref)
	if err != nil {
		t.Fatal(err)
	}
	for r := range b.Runs {
		requireSameResult(t, "fast path", b.Runs[r], want)
	}
	if len(b.Runs[0].Latencies) == 0 {
		t.Fatal("expected successful data sets")
	}
	b.Runs[0].Latencies[0] = -1
	b.Runs[0].Completions[0] = -1
	if b.Runs[1].Latencies[0] == -1 || b.Runs[1].Completions[0] == -1 {
		t.Fatal("replications share slice storage; fast path must hand out copies")
	}
}

// ctxAfter implements context.Context and starts reporting cancellation
// after Err has been called n times, deterministically triggering the
// mid-replication poll inside the SoA event loop.
type ctxAfter struct {
	context.Context
	calls, n int
}

func (c *ctxAfter) Err() error {
	c.calls++
	if c.calls > c.n {
		return context.Canceled
	}
	return nil
}

func TestSoARunCancelsMidReplication(t *testing.T) {
	ch, pl, m := mcSetup()
	cfg := Config{
		Chain: ch, Platform: pl, Mapping: m,
		Period: 20, DataSets: 5000, Seed: 3, InjectFailures: true,
	}
	tb, err := newSoaTables(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Sanity: the run must be long enough to hit several polls.
	ctx := &ctxAfter{Context: context.Background(), n: 2}
	eng := newSoaEngine(tb, ctx)
	if _, err := eng.run(cfg.Seed); err != context.Canceled {
		t.Fatalf("run with mid-replication cancellation = %v, want context.Canceled", err)
	}
	if ctx.calls <= 2 {
		t.Fatalf("expected the event loop to poll the context more than twice, got %d calls", ctx.calls)
	}
}

func TestSoABatchCancelledContext(t *testing.T) {
	ch, pl, m := mcSetup()
	cfg := Config{
		Chain: ch, Platform: pl, Mapping: m,
		Period: 20, DataSets: 50, Seed: 3, InjectFailures: true,
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunBatch(ctx, cfg, 4, 2); err == nil {
		t.Fatal("RunBatch with a cancelled context succeeded")
	}
}

// TestSoAValidationMatchesScalar pins that the flat engine rejects
// exactly what the scalar path rejects, with an error either way.
func TestSoAValidationMatchesScalar(t *testing.T) {
	c, pl, m := pipeline3()
	bad := []Config{
		{Chain: c, Platform: pl, Mapping: m, Period: 0, DataSets: 10},
		{Chain: c, Platform: pl, Mapping: m, Period: 12, DataSets: 0},
		{Chain: c, Platform: pl, Mapping: mapping.Mapping{}, Period: 12, DataSets: 10},
		{Chain: chain.Chain{}, Platform: pl, Mapping: m, Period: 12, DataSets: 10},
	}
	for i, cfg := range bad {
		ref := cfg
		ref.ScalarReference = true
		if _, err := Run(cfg); err == nil {
			t.Fatalf("case %d: SoA accepted an invalid config", i)
		}
		if _, err := Run(ref); err == nil {
			t.Fatalf("case %d: scalar accepted an invalid config", i)
		}
	}
	// Out-of-range WarmUp normalizes to 0 on both paths.
	cfg := Config{Chain: c, Platform: pl, Mapping: m, Period: 12, DataSets: 10, WarmUp: 99}
	ref := cfg
	ref.ScalarReference = true
	got, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Run(ref)
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, "warmup normalization", got, want)
}

// TestSoAUnknownRoutingPanicsLazily pins the lazy panic contract shared
// with the scalar loop: a bogus routing mode only panics when a boundary
// is actually crossed, so a single-stage mapping never observes it.
func TestSoAUnknownRoutingPanicsLazily(t *testing.T) {
	c, pl, m := pipeline3()
	cfg := Config{
		Chain: c, Platform: pl, Mapping: m,
		Period: 12, DataSets: 5, Routing: RoutingMode(42),
	}
	for _, scalar := range []bool{false, true} {
		cfg.ScalarReference = scalar
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("scalar=%v: multi-stage run with unknown routing mode did not panic", scalar)
				}
			}()
			_, _ = Run(cfg)
		}()
	}

	// Single stage: no boundary, no panic, identical results.
	single := Config{
		Chain:    chain.Chain{{Work: 10, Out: 0}},
		Platform: platform.Homogeneous(1, 1, 0, 1, 0, 1),
		Mapping:  mapping.Mapping{Parts: interval.Finest(1), Procs: [][]int{{0}}},
		Period:   12, DataSets: 5, Routing: RoutingMode(42),
	}
	ref := single
	ref.ScalarReference = true
	got, err := Run(single)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Run(ref)
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, "single stage bogus routing", got, want)
}
