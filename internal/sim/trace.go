package sim

import (
	"fmt"
	"sort"
	"strings"
)

// OpKind classifies traced operations.
type OpKind int

const (
	// OpCompute is one replica computing one data set.
	OpCompute OpKind = iota
	// OpSend is a replica shipping an interval output towards the
	// boundary router.
	OpSend
	// OpForward is the router delivering to a downstream replica
	// (TwoHop mode only).
	OpForward
)

// Op is one traced operation.
type Op struct {
	Kind    OpKind
	Stage   int // interval index (for sends/forwards: the boundary = source stage)
	Replica int // replica index within the stage (dst replica for forwards)
	Proc    int // processor (compute ops only; -1 otherwise)
	DataSet int
	Start   float64
	End     float64
	Failed  bool
}

// Trace collects operations of a simulation run when attached to
// Config.Trace. The zero value is ready to use.
type Trace struct {
	Ops []Op
}

func (t *Trace) add(op Op) {
	if t == nil {
		return
	}
	t.Ops = append(t.Ops, op)
}

// ComputeOps returns the compute operations sorted by start time.
func (t *Trace) ComputeOps() []Op {
	var out []Op
	for _, op := range t.Ops {
		if op.Kind == OpCompute {
			out = append(out, op)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Start < out[b].Start })
	return out
}

// Utilization returns, per processor, the fraction of [from, to] spent
// computing.
func (t *Trace) Utilization(from, to float64) map[int]float64 {
	busy := map[int]float64{}
	for _, op := range t.Ops {
		if op.Kind != OpCompute {
			continue
		}
		lo, hi := op.Start, op.End
		if lo < from {
			lo = from
		}
		if hi > to {
			hi = to
		}
		if hi > lo {
			busy[op.Proc] += hi - lo
		}
	}
	for p := range busy {
		busy[p] /= to - from
	}
	return busy
}

// Gantt renders the compute operations of [from, to] as one text row per
// processor. Each cell is the data-set index modulo 10; failed
// computations render as 'X', idle time as '.'.
func (t *Trace) Gantt(from, to float64, width int) string {
	if width <= 0 {
		width = 72
	}
	if to <= from {
		return "(empty time window)\n"
	}
	procs := map[int][]Op{}
	var ids []int
	for _, op := range t.Ops {
		if op.Kind != OpCompute || op.End <= from || op.Start >= to {
			continue
		}
		if _, seen := procs[op.Proc]; !seen {
			ids = append(ids, op.Proc)
		}
		procs[op.Proc] = append(procs[op.Proc], op)
	}
	sort.Ints(ids)
	var b strings.Builder
	fmt.Fprintf(&b, "time %.4g .. %.4g (one column = %.4g)\n", from, to, (to-from)/float64(width))
	for _, id := range ids {
		row := []byte(strings.Repeat(".", width))
		for _, op := range procs[id] {
			lo := int(float64(width) * (op.Start - from) / (to - from))
			hi := int(float64(width) * (op.End - from) / (to - from))
			if lo < 0 {
				lo = 0
			}
			if hi >= width {
				hi = width - 1
			}
			ch := byte('0' + op.DataSet%10)
			if op.Failed {
				ch = 'X'
			}
			for x := lo; x <= hi; x++ {
				row[x] = ch
			}
		}
		fmt.Fprintf(&b, "P%-3d |%s|\n", id, string(row))
	}
	return b.String()
}
