package sim

import (
	"math"
	"strings"
	"testing"

	"relpipe/internal/chain"
	"relpipe/internal/interval"
	"relpipe/internal/mapping"
	"relpipe/internal/platform"
)

func TestTraceRecordsComputeOps(t *testing.T) {
	c, pl, m := pipeline3()
	tr := &Trace{}
	_, err := Run(Config{
		Chain: c, Platform: pl, Mapping: m,
		Period: 12, DataSets: 4, Routing: OneHop, Trace: tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	ops := tr.ComputeOps()
	// 3 stages × 4 data sets, single replica each.
	if len(ops) != 12 {
		t.Fatalf("compute ops = %d, want 12", len(ops))
	}
	for i := 1; i < len(ops); i++ {
		if ops[i].Start < ops[i-1].Start {
			t.Fatal("ComputeOps not sorted by start")
		}
	}
	for _, op := range ops {
		if op.Failed {
			t.Fatal("failure recorded in a failure-free run")
		}
		if op.End <= op.Start {
			t.Fatalf("empty op window %+v", op)
		}
	}
}

func TestTraceRecordsSendAndForward(t *testing.T) {
	c, pl, m := mcSetup()
	tr := &Trace{}
	_, err := Run(Config{
		Chain: c, Platform: pl, Mapping: m,
		Period: 20, DataSets: 50, Seed: 3, InjectFailures: true,
		Routing: TwoHop, Trace: tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	var sends, forwards, failures int
	for _, op := range tr.Ops {
		switch op.Kind {
		case OpSend:
			sends++
		case OpForward:
			forwards++
		}
		if op.Failed {
			failures++
		}
	}
	if sends == 0 || forwards == 0 {
		t.Fatalf("sends=%d forwards=%d, want both > 0 in TwoHop", sends, forwards)
	}
	if failures == 0 {
		t.Fatal("no failures recorded despite injection on a lossy platform")
	}
}

func TestTraceNilSafe(t *testing.T) {
	var tr *Trace
	tr.add(Op{}) // must not panic
	c, pl, m := pipeline3()
	if _, err := Run(Config{Chain: c, Platform: pl, Mapping: m, Period: 12, DataSets: 2}); err != nil {
		t.Fatal(err)
	}
}

func TestUtilizationMatchesSchedule(t *testing.T) {
	c, pl, m := pipeline3()
	tr := &Trace{}
	_, err := Run(Config{
		Chain: c, Platform: pl, Mapping: m,
		Period: 20, DataSets: 10, Routing: OneHop, Trace: tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Steady window [40, 160]: P0 computes 10 of every 20 time units.
	u := tr.Utilization(40, 160)
	if math.Abs(u[0]-0.5) > 0.02 {
		t.Fatalf("util P0 = %v, want ~0.5", u[0])
	}
	if math.Abs(u[2]-0.4) > 0.02 {
		t.Fatalf("util P2 = %v, want ~0.4", u[2])
	}
}

func TestGanttRendering(t *testing.T) {
	c, pl, m := pipeline3()
	tr := &Trace{}
	_, err := Run(Config{
		Chain: c, Platform: pl, Mapping: m,
		Period: 12, DataSets: 3, Routing: OneHop, Trace: tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	g := tr.Gantt(0, 60, 60)
	for _, want := range []string{"P0", "P1", "P2", "0", "1", "2"} {
		if !strings.Contains(g, want) {
			t.Fatalf("Gantt missing %q:\n%s", want, g)
		}
	}
	if tr.Gantt(5, 5, 10) != "(empty time window)\n" {
		t.Fatal("degenerate window not handled")
	}
}

func TestGanttShowsFailures(t *testing.T) {
	c := chain.Chain{{Work: 10, Out: 0}}
	pl := platform.Homogeneous(1, 1, 0.1, 1, 0, 1)
	m := mapping.Mapping{Parts: interval.Single(1), Procs: [][]int{{0}}}
	tr := &Trace{}
	_, err := Run(Config{
		Chain: c, Platform: pl, Mapping: m,
		Period: 10, DataSets: 50, Seed: 9, InjectFailures: true, Trace: tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	g := tr.Gantt(0, 500, 100)
	if !strings.Contains(g, "X") {
		t.Fatalf("Gantt shows no failed ops on a lossy run:\n%s", g)
	}
}
