// Package stats provides the summary statistics used by the experiment
// harness: online (Welford) accumulators, quantiles, geometric means and
// fixed-width histograms. Everything is dependency-free and deterministic.
//
// Key entry points: Acc (online accumulator), Summary, Histogram,
// Quantile, Median, Mean and GeoMean. Accumulation order is the
// caller's iteration order, so equal inputs in equal order reproduce
// every figure bit for bit.
package stats
