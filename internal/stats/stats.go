package stats

import (
	"fmt"
	"math"
	"sort"
)

// Acc is an online accumulator of count, mean and variance using
// Welford's algorithm, plus min/max. The zero value is ready to use.
type Acc struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Add folds x into the accumulator.
func (a *Acc) Add(x float64) {
	if a.n == 0 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	a.n++
	d := x - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (x - a.mean)
}

// N returns the number of samples.
func (a *Acc) N() int { return a.n }

// Mean returns the sample mean, or NaN if empty.
func (a *Acc) Mean() float64 {
	if a.n == 0 {
		return math.NaN()
	}
	return a.mean
}

// Var returns the unbiased sample variance, or NaN if fewer than 2 samples.
func (a *Acc) Var() float64 {
	if a.n < 2 {
		return math.NaN()
	}
	return a.m2 / float64(a.n-1)
}

// StdDev returns the unbiased sample standard deviation.
func (a *Acc) StdDev() float64 { return math.Sqrt(a.Var()) }

// Min returns the smallest sample, or NaN if empty.
func (a *Acc) Min() float64 {
	if a.n == 0 {
		return math.NaN()
	}
	return a.min
}

// Max returns the largest sample, or NaN if empty.
func (a *Acc) Max() float64 {
	if a.n == 0 {
		return math.NaN()
	}
	return a.max
}

// StdErr returns the standard error of the mean.
func (a *Acc) StdErr() float64 {
	if a.n < 2 {
		return math.NaN()
	}
	return a.StdDev() / math.Sqrt(float64(a.n))
}

// Mean returns the arithmetic mean of xs, or NaN if empty.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean of xs (all must be > 0),
// computed in log space to avoid overflow/underflow.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics (type-7, the numpy default).
// It returns NaN on empty input and does not modify xs.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 || q < 0 || q > 1 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Median returns the 0.5-quantile of xs.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Summary holds the usual five-number summary plus mean and count.
type Summary struct {
	N                int
	Mean, StdDev     float64
	Min, Q1, Med, Q3 float64
	Max              float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	var a Acc
	for _, x := range xs {
		a.Add(x)
	}
	return Summary{
		N:      a.N(),
		Mean:   a.Mean(),
		StdDev: a.StdDev(),
		Min:    a.Min(),
		Q1:     Quantile(xs, 0.25),
		Med:    Median(xs),
		Q3:     Quantile(xs, 0.75),
		Max:    a.Max(),
	}
}

// String renders the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.6g sd=%.6g min=%.6g q1=%.6g med=%.6g q3=%.6g max=%.6g",
		s.N, s.Mean, s.StdDev, s.Min, s.Q1, s.Med, s.Q3, s.Max)
}

// Histogram is a fixed-width histogram over [Lo, Hi). Values outside the
// range are counted in Under/Over.
type Histogram struct {
	Lo, Hi      float64
	Counts      []int
	Under, Over int
	n           int
}

// NewHistogram creates a histogram with the given number of bins.
// It panics if bins <= 0 or hi <= lo.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 || hi <= lo {
		panic("stats: invalid histogram parameters")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Add counts x into its bin.
func (h *Histogram) Add(x float64) {
	h.n++
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		i := int(float64(len(h.Counts)) * (x - h.Lo) / (h.Hi - h.Lo))
		if i == len(h.Counts) { // x == Hi after rounding
			i--
		}
		h.Counts[i]++
	}
}

// N returns the total number of values added (including out-of-range).
func (h *Histogram) N() int { return h.n }

// BinCenter returns the center of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + w*(float64(i)+0.5)
}
