package stats

import (
	"math"
	"testing"
	"testing/quick"

	"relpipe/internal/rng"
)

func almostEq(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestAccEmpty(t *testing.T) {
	var a Acc
	if a.N() != 0 {
		t.Fatal("empty Acc has nonzero N")
	}
	for _, v := range []float64{a.Mean(), a.Var(), a.Min(), a.Max()} {
		if !math.IsNaN(v) {
			t.Fatalf("empty Acc stat = %v, want NaN", v)
		}
	}
}

func TestAccKnownValues(t *testing.T) {
	var a Acc
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		a.Add(x)
	}
	if a.N() != 8 {
		t.Fatalf("N = %d", a.N())
	}
	if !almostEq(a.Mean(), 5, 1e-12) {
		t.Fatalf("Mean = %v, want 5", a.Mean())
	}
	// Population variance is 4; unbiased sample variance is 32/7.
	if !almostEq(a.Var(), 32.0/7.0, 1e-12) {
		t.Fatalf("Var = %v, want %v", a.Var(), 32.0/7.0)
	}
	if a.Min() != 2 || a.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v", a.Min(), a.Max())
	}
}

func TestAccMatchesDirectComputation(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.IntN(100)
		xs := make([]float64, n)
		var a Acc
		for i := range xs {
			xs[i] = r.Uniform(-100, 100)
			a.Add(xs[i])
		}
		mean := Mean(xs)
		v := 0.0
		for _, x := range xs {
			v += (x - mean) * (x - mean)
		}
		v /= float64(n - 1)
		return almostEq(a.Mean(), mean, 1e-9) && almostEq(a.Var(), v, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMean(t *testing.T) {
	if !almostEq(Mean([]float64{1, 2, 3, 4}), 2.5, 1e-15) {
		t.Fatal("Mean([1..4]) != 2.5")
	}
	if !math.IsNaN(Mean(nil)) {
		t.Fatal("Mean(nil) != NaN")
	}
}

func TestGeoMean(t *testing.T) {
	if !almostEq(GeoMean([]float64{1, 4}), 2, 1e-12) {
		t.Fatal("GeoMean([1,4]) != 2")
	}
	if !math.IsNaN(GeoMean([]float64{1, -1})) {
		t.Fatal("GeoMean with negative did not return NaN")
	}
	// Underflow safety: tiny probabilities.
	g := GeoMean([]float64{1e-300, 1e-300, 1e-300})
	if !almostEq(g, 1e-300, 1e-9) {
		t.Fatalf("GeoMean tiny = %v", g)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{3, 1, 2, 4}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 4}, {0.5, 2.5}, {0.25, 1.75},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almostEq(got, c.want, 1e-12) {
			t.Fatalf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	// Input must not be mutated.
	if xs[0] != 3 {
		t.Fatal("Quantile mutated its input")
	}
	if !math.IsNaN(Quantile(nil, 0.5)) || !math.IsNaN(Quantile(xs, -0.1)) {
		t.Fatal("Quantile invalid inputs did not return NaN")
	}
}

func TestQuantileSingle(t *testing.T) {
	if Quantile([]float64{7}, 0.9) != 7 {
		t.Fatal("Quantile of singleton != the element")
	}
}

func TestMedianOdd(t *testing.T) {
	if Median([]float64{5, 1, 9}) != 5 {
		t.Fatal("Median([5,1,9]) != 5")
	}
}

func TestQuantileMonotone(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 1 + r.IntN(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Uniform(-10, 10)
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0001; q += 0.1 {
			qq := math.Min(q, 1)
			v := Quantile(xs, qq)
			if v < prev-1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Med != 3 || s.Min != 1 || s.Max != 5 {
		t.Fatalf("Summarize = %+v", s)
	}
	if s.String() == "" {
		t.Fatal("Summary.String empty")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 1.9, 2, 9.99, 10, 11} {
		h.Add(x)
	}
	if h.Under != 1 || h.Over != 2 {
		t.Fatalf("Under/Over = %d/%d", h.Under, h.Over)
	}
	if h.Counts[0] != 2 { // 0 and 1.9
		t.Fatalf("bin 0 = %d", h.Counts[0])
	}
	if h.Counts[1] != 1 { // 2
		t.Fatalf("bin 1 = %d", h.Counts[1])
	}
	if h.Counts[4] != 1 { // 9.99
		t.Fatalf("bin 4 = %d", h.Counts[4])
	}
	if h.N() != 7 {
		t.Fatalf("N = %d", h.N())
	}
}

func TestHistogramBinCenter(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	if !almostEq(h.BinCenter(0), 1, 1e-15) || !almostEq(h.BinCenter(4), 9, 1e-15) {
		t.Fatalf("BinCenter = %v, %v", h.BinCenter(0), h.BinCenter(4))
	}
}

func TestHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewHistogram(1,0,3) did not panic")
		}
	}()
	NewHistogram(1, 0, 3)
}

func TestHistogramTotalConserved(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		h := NewHistogram(-5, 5, 7)
		n := r.IntN(500)
		for i := 0; i < n; i++ {
			h.Add(r.Uniform(-10, 10))
		}
		total := h.Under + h.Over
		for _, c := range h.Counts {
			total += c
		}
		return total == n && h.N() == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
