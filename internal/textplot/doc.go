// Package textplot renders multi-series line charts as ASCII text, the
// offline stand-in for the paper's gnuplot figures. Series are drawn with
// distinct markers on a shared grid with linear or logarithmic y scaling
// (the failure-probability figures span 1e-12…1e-3 and need the log
// scale).
//
// Key entry points: Render, Series and Options. Rendering is
// deterministic: the same series produce the same bytes, so figure
// goldens can be checked into tests.
package textplot
