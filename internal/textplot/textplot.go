package textplot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one plotted curve.
type Series struct {
	Label string
	X, Y  []float64
}

// Options controls the rendering.
type Options struct {
	Width, Height int // plot area in characters (default 72×20)
	Title         string
	XLabel        string
	YLabel        string
	YLog          bool // log10 y axis; non-positive points are skipped
}

var markers = []byte{'o', 'x', '+', '*', '#', '@'}

// Render draws the chart. It never fails: empty or degenerate inputs
// yield a chart with an informative body.
func Render(series []Series, opts Options) string {
	w, h := opts.Width, opts.Height
	if w <= 0 {
		w = 72
	}
	if h <= 0 {
		h = 20
	}

	// Collect finite points, applying the log transform.
	type pt struct{ x, y float64 }
	pts := make([][]pt, len(series))
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for si, s := range series {
		n := len(s.X)
		if len(s.Y) < n {
			n = len(s.Y)
		}
		for i := 0; i < n; i++ {
			x, y := s.X[i], s.Y[i]
			if math.IsNaN(x) || math.IsInf(x, 0) || math.IsNaN(y) || math.IsInf(y, 0) {
				continue
			}
			if opts.YLog {
				if y <= 0 {
					continue
				}
				y = math.Log10(y)
			}
			pts[si] = append(pts[si], pt{x, y})
			xmin, xmax = math.Min(xmin, x), math.Max(xmax, x)
			ymin, ymax = math.Min(ymin, y), math.Max(ymax, y)
		}
	}

	var b strings.Builder
	if opts.Title != "" {
		fmt.Fprintf(&b, "%s\n", opts.Title)
	}
	empty := math.IsInf(xmin, 1)
	if empty {
		b.WriteString("(no finite data points)\n")
		return b.String()
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}

	grid := make([][]byte, h)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", w))
	}
	for si, ps := range pts {
		mk := markers[si%len(markers)]
		for _, p := range ps {
			col := int((p.x - xmin) / (xmax - xmin) * float64(w-1))
			row := int((p.y - ymin) / (ymax - ymin) * float64(h-1))
			row = h - 1 - row
			if grid[row][col] != ' ' && grid[row][col] != mk {
				grid[row][col] = '?' // collision between series
			} else {
				grid[row][col] = mk
			}
		}
	}

	fmtTick := func(v float64) string {
		if opts.YLog {
			return fmt.Sprintf("1e%+.1f", v)
		}
		return fmt.Sprintf("%.4g", v)
	}
	yTop, yBot := fmtTick(ymax), fmtTick(ymin)
	lw := len(yTop)
	if len(yBot) > lw {
		lw = len(yBot)
	}
	if opts.YLabel != "" {
		fmt.Fprintf(&b, "%s\n", opts.YLabel)
	}
	for r := range grid {
		label := strings.Repeat(" ", lw)
		if r == 0 {
			label = fmt.Sprintf("%*s", lw, yTop)
		} else if r == h-1 {
			label = fmt.Sprintf("%*s", lw, yBot)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(grid[r]))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", lw), strings.Repeat("-", w))
	lo := fmt.Sprintf("%.4g", xmin)
	hi := fmt.Sprintf("%.4g", xmax)
	pad := w - len(lo) - len(hi)
	if pad < 1 {
		pad = 1
	}
	fmt.Fprintf(&b, "%s  %s%s%s\n", strings.Repeat(" ", lw), lo, strings.Repeat(" ", pad), hi)
	if opts.XLabel != "" {
		fmt.Fprintf(&b, "%s  [%s]\n", strings.Repeat(" ", lw), opts.XLabel)
	}
	for si, s := range series {
		fmt.Fprintf(&b, "  %c %s\n", markers[si%len(markers)], s.Label)
	}
	return b.String()
}
