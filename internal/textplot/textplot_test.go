package textplot

import (
	"math"
	"strings"
	"testing"
)

func TestRenderBasics(t *testing.T) {
	s := []Series{{Label: "linear", X: []float64{0, 1, 2, 3}, Y: []float64{0, 1, 2, 3}}}
	out := Render(s, Options{Title: "t", XLabel: "x", YLabel: "y", Width: 40, Height: 10})
	for _, want := range []string{"t\n", "[x]", "y\n", "linear", "o"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(out, "\n")
	if len(lines) < 12 {
		t.Fatalf("output too short: %d lines", len(lines))
	}
}

func TestRenderMultipleSeriesMarkers(t *testing.T) {
	s := []Series{
		{Label: "a", X: []float64{0, 1}, Y: []float64{0, 0}},
		{Label: "b", X: []float64{0, 1}, Y: []float64{1, 1}},
	}
	out := Render(s, Options{Width: 20, Height: 6})
	if !strings.Contains(out, "o") || !strings.Contains(out, "x") {
		t.Fatalf("missing distinct markers:\n%s", out)
	}
}

func TestRenderLogScale(t *testing.T) {
	s := []Series{{Label: "p", X: []float64{1, 2, 3}, Y: []float64{1e-9, 1e-6, 1e-3}}}
	out := Render(s, Options{YLog: true, Width: 30, Height: 8})
	if !strings.Contains(out, "1e") {
		t.Fatalf("log axis labels missing:\n%s", out)
	}
}

func TestRenderSkipsNonFinite(t *testing.T) {
	s := []Series{{
		Label: "bad",
		X:     []float64{0, 1, 2, 3},
		Y:     []float64{math.NaN(), math.Inf(1), 1, 2},
	}}
	out := Render(s, Options{Width: 20, Height: 5})
	if !strings.Contains(out, "o") {
		t.Fatalf("finite points were dropped:\n%s", out)
	}
}

func TestRenderLogSkipsNonPositive(t *testing.T) {
	s := []Series{{Label: "z", X: []float64{0, 1}, Y: []float64{0, -1}}}
	out := Render(s, Options{YLog: true})
	if !strings.Contains(out, "no finite data points") {
		t.Fatalf("expected empty-chart message:\n%s", out)
	}
}

func TestRenderEmpty(t *testing.T) {
	out := Render(nil, Options{})
	if !strings.Contains(out, "no finite data points") {
		t.Fatalf("empty render = %q", out)
	}
}

func TestRenderConstantSeries(t *testing.T) {
	// Degenerate ranges (all x equal, all y equal) must not divide by
	// zero or panic.
	s := []Series{{Label: "const", X: []float64{5, 5}, Y: []float64{2, 2}}}
	out := Render(s, Options{Width: 10, Height: 4})
	if !strings.Contains(out, "o") {
		t.Fatalf("constant series missing:\n%s", out)
	}
}

func TestRenderCollisionMarker(t *testing.T) {
	s := []Series{
		{Label: "a", X: []float64{0}, Y: []float64{0}},
		{Label: "b", X: []float64{0}, Y: []float64{0}},
	}
	out := Render(s, Options{Width: 10, Height: 4})
	if !strings.Contains(out, "?") {
		t.Fatalf("collision marker missing:\n%s", out)
	}
}

func TestRenderMismatchedLengths(t *testing.T) {
	s := []Series{{Label: "m", X: []float64{0, 1, 2}, Y: []float64{1}}}
	out := Render(s, Options{Width: 10, Height: 4})
	if !strings.Contains(out, "o") {
		t.Fatalf("short series dropped entirely:\n%s", out)
	}
}
