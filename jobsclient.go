package relpipe

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
)

// JobsClient is a minimal Go client for the service's async job API
// (POST/GET/DELETE /v1/jobs, see API.md). The zero value is not usable;
// set BaseURL (e.g. "http://localhost:8080"). It exists so programs —
// cmd/jobs among them — drive the jobs flow with the same DTOs the
// server uses instead of hand-rolling HTTP and SSE plumbing.
//
// Against a cluster (cmd/serve -peers), BaseURL may point at any
// member: jobs are any-node, so Status, Watch, Cancel and List work
// regardless of which node accepted the Submit — the service fans
// reads out and proxies SSE watches to the owning node. JobStatus.Node
// reports where the job actually runs.
type JobsClient struct {
	// BaseURL is the service root, without the /v1 prefix.
	BaseURL string
	// HTTPClient overrides http.DefaultClient when non-nil. Watch holds
	// its connection open for the job's lifetime, so a client with a
	// short Timeout will sever long watches.
	HTTPClient *http.Client
}

func (c *JobsClient) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

func (c *JobsClient) url(path string) string {
	return strings.TrimRight(c.BaseURL, "/") + path
}

// jobURL builds a /v1/jobs/{id}[/suffix] URL with the id path-escaped
// (ids are hex today, but the server owns that format, not us).
func (c *JobsClient) jobURL(id, suffix string) string {
	return c.url("/v1/jobs/" + url.PathEscape(id) + suffix)
}

// decodeJobResponse parses a JobStatus answer, converting error
// documents into errors.
func decodeJobResponse(resp *http.Response) (JobStatus, error) {
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return JobStatus{}, err
	}
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		var e ErrorResponse
		if json.Unmarshal(body, &e) == nil && e.Error != "" {
			return JobStatus{}, fmt.Errorf("jobs: %s (HTTP %d)", e.Error, resp.StatusCode)
		}
		return JobStatus{}, fmt.Errorf("jobs: HTTP %d", resp.StatusCode)
	}
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		return JobStatus{}, err
	}
	return st, nil
}

// Submit submits one async job: kind names the endpoint and request is
// its request document (marshaled if not already a json.RawMessage or
// []byte). It returns the accepted job's status — already terminal when
// the result was cached.
func (c *JobsClient) Submit(ctx context.Context, kind string, request any, client string) (JobStatus, error) {
	var raw json.RawMessage
	switch r := request.(type) {
	case json.RawMessage:
		raw = r
	case []byte:
		raw = r
	default:
		b, err := json.Marshal(request)
		if err != nil {
			return JobStatus{}, err
		}
		raw = b
	}
	body, err := json.Marshal(JobSubmitRequest{Kind: kind, Request: raw, Client: client})
	if err != nil {
		return JobStatus{}, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.url("/v1/jobs"), bytes.NewReader(body))
	if err != nil {
		return JobStatus{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http().Do(req)
	if err != nil {
		return JobStatus{}, err
	}
	return decodeJobResponse(resp)
}

// Status fetches one job snapshot.
func (c *JobsClient) Status(ctx context.Context, id string) (JobStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.jobURL(id, ""), nil)
	if err != nil {
		return JobStatus{}, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return JobStatus{}, err
	}
	return decodeJobResponse(resp)
}

// Cancel requests cancellation and returns the job's current snapshot
// (the state flips to cancelled once the solver observes its context).
func (c *JobsClient) Cancel(ctx context.Context, id string) (JobStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, c.jobURL(id, ""), nil)
	if err != nil {
		return JobStatus{}, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return JobStatus{}, err
	}
	return decodeJobResponse(resp)
}

// List fetches every stored job, newest first; client filters when
// non-empty.
func (c *JobsClient) List(ctx context.Context, client string) ([]JobStatus, error) {
	u := c.url("/v1/jobs")
	if client != "" {
		u += "?client=" + url.QueryEscape(client)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("jobs: HTTP %d", resp.StatusCode)
	}
	var lr JobListResponse
	if err := json.Unmarshal(body, &lr); err != nil {
		return nil, err
	}
	return lr.Jobs, nil
}

// ErrJobShutdown is returned by Watch when the server begins shutting
// down before the job finished (its status stays queryable until the
// server exits).
var ErrJobShutdown = errors.New("relpipe: server shutting down")

// Watch streams a job's SSE events, invoking fn for every status
// snapshot (including the initial one), and returns the terminal
// status. Progress is monotone: the server clamps out-of-order reports
// from its parallel workers. Cancel ctx to stop watching (the job keeps
// running; use Cancel to stop it).
func (c *JobsClient) Watch(ctx context.Context, id string, fn func(JobStatus)) (JobStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.jobURL(id, "/events"), nil)
	if err != nil {
		return JobStatus{}, err
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := c.http().Do(req)
	if err != nil {
		return JobStatus{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeJobResponse(resp)
	}

	var last JobStatus
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 8<<20)
	event, data := "", ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event:"):
			event = strings.TrimSpace(strings.TrimPrefix(line, "event:"))
		case strings.HasPrefix(line, "data:"):
			data = strings.TrimSpace(strings.TrimPrefix(line, "data:"))
		case line == "":
			if data == "" {
				continue
			}
			var st JobStatus
			if err := json.Unmarshal([]byte(data), &st); err != nil {
				return last, err
			}
			last = st
			if fn != nil {
				fn(st)
			}
			switch event {
			case "done":
				return last, nil
			case "shutdown":
				return last, ErrJobShutdown
			}
			event, data = "", ""
		}
	}
	if err := sc.Err(); err != nil {
		return last, err
	}
	return last, io.ErrUnexpectedEOF
}
