// Package relpipe maps pipelined real-time systems — linear chains of
// tasks processed in a pipelined fashion — onto distributed platforms,
// optimizing reliability under period (throughput) and latency
// (response-time) constraints. It reproduces "Reliability and performance
// optimization of pipelined real-time systems" (Benoit, Dufossé, Girault,
// Robert; ICPP 2010 / JPDC 2013): interval mappings with spatial
// replication, the reliability/latency/period evaluation of §4, the
// polynomial algorithms of §5, exact solvers for the NP-complete
// variants, the heuristics of §7, and a failure-injecting simulator.
//
// Quick start:
//
//	inst := relpipe.Instance{
//	    Chain:    relpipe.Chain{{Work: 10, Out: 2}, {Work: 8, Out: 0}},
//	    Platform: relpipe.HomogeneousPlatform(4, 1, 1e-8, 1, 1e-5, 3),
//	}
//	sol, err := relpipe.Optimize(inst, relpipe.Bounds{Period: 12}, relpipe.Auto)
//
// See the examples/ directory for complete programs and DESIGN.md for the
// paper-to-package map.
package relpipe

import (
	"context"
	"math"
	"time"

	"relpipe/internal/alloc"
	"relpipe/internal/chain"
	"relpipe/internal/core"
	"relpipe/internal/cost"
	"relpipe/internal/frontier"
	"relpipe/internal/heur"
	"relpipe/internal/interval"
	"relpipe/internal/mapping"
	"relpipe/internal/mttf"
	"relpipe/internal/multichain"
	"relpipe/internal/platform"
	"relpipe/internal/progress"
	"relpipe/internal/rng"
	"relpipe/internal/sched"
	"relpipe/internal/search"
	"relpipe/internal/sim"
)

// Core model types.
type (
	// Task is one pipeline stage: Work units of computation producing
	// Out units of output data (the last task has Out = 0).
	Task = chain.Task
	// Chain is the application: a linear chain of tasks.
	Chain = chain.Chain
	// Processor describes one computing resource (speed, failure rate).
	Processor = platform.Processor
	// Platform is the hardware target: processors, link bandwidth and
	// failure rate, and the replication bound K.
	Platform = platform.Platform
	// Interval is a run of consecutive tasks mapped together.
	Interval = interval.Interval
	// Partition divides the chain into intervals.
	Partition = interval.Partition
	// Mapping assigns every interval to a set of replica processors.
	Mapping = mapping.Mapping
	// Eval carries every §4 objective of a mapping: reliability,
	// expected/worst-case latency and period.
	Eval = mapping.Eval
	// Instance bundles a chain with a platform.
	Instance = core.Instance
	// Bounds carries period/latency constraints (0 = unconstrained).
	Bounds = core.Bounds
	// Method selects the optimization algorithm.
	Method = core.Method
	// Solution is a mapping with its evaluation.
	Solution = core.Solution
	// SimConfig configures a failure-injection simulation run.
	SimConfig = sim.Config
	// SimResult aggregates a simulation run.
	SimResult = sim.Result
	// SimTrace records the operations of a simulation run for Gantt
	// rendering and utilization analysis (attach to SimConfig.Trace).
	SimTrace = sim.Trace
	// AllocConstraint restricts which processor may host which interval.
	AllocConstraint = alloc.Constraint
	// FrontierPoint is one Pareto-optimal (period, latency, reliability)
	// trade-off.
	FrontierPoint = frontier.Point
	// Schedule is the closed-form periodic timetable of a mapping.
	Schedule = sched.Table
	// CostSolution is a cost-minimal mapping (see MinimizeCost).
	CostSolution = cost.Solution
	// SharedApp is one application competing for a shared platform
	// (see OptimizeShared).
	SharedApp = multichain.App
	// SharedResult is the joint mapping of several applications.
	SharedResult = multichain.Result
)

// Optimization methods.
const (
	// Auto picks the strongest applicable method.
	Auto = core.Auto
	// HeurP is the period-oriented heuristic (§7).
	HeurP = core.HeurP
	// HeurL is the latency-oriented heuristic (§7).
	HeurL = core.HeurL
	// BestHeuristic runs both heuristics and keeps the better result.
	BestHeuristic = core.BestHeuristic
	// DP is the reliability/period dynamic program (§5.1–5.2,
	// homogeneous platforms).
	DP = core.DP
	// Exact enumerates partitions with optimal allocation (homogeneous
	// platforms, ≤ 22 tasks).
	Exact = core.Exact
	// ILP solves the §5.4 integer program by branch and bound.
	ILP = core.ILP
	// Heuristic is the large-n search engine: §7 candidates refined by
	// a deterministic random-restart local-search portfolio. The only
	// solve path beyond the exact ceiling (~22 tasks) with a latency
	// bound or a heterogeneous platform; Auto selects it there.
	Heuristic = core.Heuristic
)

// Simulation routing modes.
const (
	// SimOneHop charges each stage boundary one hop (matches the
	// latency/period formulas).
	SimOneHop = sim.OneHop
	// SimTwoHop charges replica→router and router→replica hops
	// (matches the reliability formula, Eq. 9).
	SimTwoHop = sim.TwoHop
)

// ErrInfeasible is returned by Optimize when no mapping fits the bounds.
var ErrInfeasible = core.ErrInfeasible

// Options tunes how solvers execute. Parallelism never changes a
// solver's answer: every parallel path shards its index space and
// reduces in deterministic order, so results are bit-identical to the
// sequential run for any degree (enforced by differential tests).
// The search knobs (Restarts, Budget, Seed) select how much work the
// Heuristic method spends — for a fixed Seed its answer too is
// identical at every parallelism degree.
type Options struct {
	// Parallelism caps the worker goroutines of one solve: 0 means
	// GOMAXPROCS, 1 (or any negative value) forces sequential
	// execution. Servers running many solves concurrently should budget
	// this so that workers × Parallelism ≈ GOMAXPROCS
	// (internal/service does).
	Parallelism int
	// Context cancels a long solve mid-shard; nil means no cancellation.
	Context context.Context
	// Restarts is the Heuristic method's portfolio size (0 = default 8).
	Restarts int
	// Budget is the Heuristic method's per-restart iteration budget
	// (0 = default, scaled with the chain length).
	Budget int
	// Seed drives the Heuristic method's random choices; equal seeds
	// give bit-identical results at any parallelism.
	Seed uint64
	// TimeBudget optionally caps the Heuristic method's wall-clock time
	// (0 = none). A truncated run is still valid but no longer
	// machine-independent.
	TimeBudget time.Duration
	// Progress, when non-nil, receives (done, total) completion counts
	// from the long-running engines: heuristic-search restarts
	// (OptimizeWith and friends with the Heuristic method), Monte-Carlo
	// replications (SimulateBatch, AdaptBatch), frontier sweep stages
	// (FrontierWith). Reports may come from parallel workers; the hook
	// must be concurrency-safe and never influences a result. This is
	// the observability hook the async job service streams over SSE.
	Progress func(done, total int64)
	// Tables, when non-nil, supplies pre-built heuristic partition
	// tables for the instance being solved (BuildHeuristicTables).
	// Only the Heuristic search method consults the provider, and only
	// when it actually seeds a search; returning nil declines and the
	// search builds its own. Tables are immutable and safe to share
	// across concurrent solves of the same instance — the solve
	// batcher in internal/service amortizes one build across coalesced
	// same-platform requests through this hook. Candidates, and hence
	// solutions, are bit-identical with or without it.
	Tables func(Instance) *HeuristicTables
}

func (o Options) exec() core.Exec {
	return core.Exec{
		Ctx: o.Context, Parallelism: o.Parallelism,
		Restarts: o.Restarts, Budget: o.Budget, Seed: o.Seed, TimeBudget: o.TimeBudget,
		Progress: progress.Func(o.Progress),
		Tables:   o.Tables,
	}
}

// HeuristicTables holds the pre-built partition tables of the §7
// heuristics for one instance: immutable after construction and safe
// for unsynchronized sharing across concurrent solves.
type HeuristicTables = heur.Tables

// BuildHeuristicTables eagerly builds the heuristic partition tables
// for an instance, for sharing across solves via Options.Tables.
func BuildHeuristicTables(in Instance) *HeuristicTables {
	return heur.BuildTables(in.Chain, in.Platform)
}

// Optimize computes a reliability-maximal mapping under the bounds.
func Optimize(in Instance, b Bounds, m Method) (Solution, error) {
	return core.Optimize(in, b, m)
}

// OptimizeWith is Optimize with execution options (parallelism degree,
// cancellation). The solution is identical for every Options value.
func OptimizeWith(in Instance, b Bounds, m Method, o Options) (Solution, error) {
	return core.OptimizeExec(in, b, m, o.exec())
}

// Evaluate computes reliability, latency and period of a mapping (§4).
func Evaluate(in Instance, m Mapping) (Eval, error) {
	return core.Evaluate(in, m)
}

// UnroutedFailProb computes the exact failure probability of a mapping
// without routing operations (the paper's future-work question): every
// replica sends directly to every replica of the next interval, crossing
// each boundary once instead of twice.
func UnroutedFailProb(in Instance, m Mapping) (float64, error) {
	return core.UnroutedFailProb(in, m)
}

// MinPeriod minimizes the period subject to a reliability floor (§5.2,
// converse problem): the exact DP binary search on homogeneous
// platforms, the heuristic search engine on heterogeneous ones.
// minReliability is the required success probability per data set;
// pass 0 for unconstrained.
func MinPeriod(in Instance, minReliability float64) (Solution, error) {
	return MinPeriodWith(in, minReliability, Options{})
}

// MinPeriodWith is MinPeriod with execution options.
func MinPeriodWith(in Instance, minReliability float64, o Options) (Solution, error) {
	return MinPeriodMethod(in, minReliability, Auto, o)
}

// MinPeriodMethod is MinPeriod with an explicit method: DP (exact,
// homogeneous only), Heuristic (the search engine, any platform), or
// Auto.
func MinPeriodMethod(in Instance, minReliability float64, m Method, o Options) (Solution, error) {
	minLogRel := math.Inf(-1)
	if minReliability > 0 {
		minLogRel = math.Log(minReliability)
	}
	return core.MinPeriodMethodExec(in, minLogRel, m, o.exec())
}

// Simulate runs the discrete-event pipeline simulator.
func Simulate(cfg SimConfig) (SimResult, error) { return sim.Run(cfg) }

// SimBatchResult aggregates the replications of one SimulateBatch call.
type SimBatchResult = sim.BatchResult

// SimulateBatch runs independent Monte-Carlo replications of the
// simulation — each seeded deterministically from cfg.Seed — across
// o.Parallelism workers and returns the per-replication results in
// order. The batch is bit-identical for every parallelism degree.
func SimulateBatch(cfg SimConfig, replications int, o Options) (SimBatchResult, error) {
	if cfg.Progress == nil {
		cfg.Progress = progress.Func(o.Progress)
	}
	return sim.RunBatch(o.Context, cfg, replications, o.Parallelism)
}

// ParseMethod converts a CLI name ("exact", "heur-p", …) into a Method.
func ParseMethod(s string) (Method, error) { return core.ParseMethod(s) }

// HomogeneousPlatform builds a platform of p identical processors with
// the given speed, processor failure rate, link bandwidth, link failure
// rate, and replication bound.
func HomogeneousPlatform(p int, speed, failRate, bandwidth, linkFailRate float64, maxReplicas int) Platform {
	return platform.Homogeneous(p, speed, failRate, bandwidth, linkFailRate, maxReplicas)
}

// RandomChain generates a chain of n tasks with works in [wMin, wMax] and
// output sizes in [oMin, oMax], deterministically from the seed.
func RandomChain(seed uint64, n int, wMin, wMax, oMin, oMax float64) Chain {
	return chain.Random(rng.New(seed), n, wMin, wMax, oMin, oMax)
}

// Frontier enumerates the Pareto-optimal (period, latency, reliability)
// trade-offs of the instance (homogeneous platforms).
func Frontier(in Instance) ([]FrontierPoint, error) {
	return FrontierWith(in, Options{})
}

// FrontierWith is Frontier with execution options: the enumeration,
// dominance filter and point evaluation shard across o.Parallelism
// workers, returning a bit-identical frontier for every degree.
func FrontierWith(in Instance, o Options) ([]FrontierPoint, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	return frontier.ComputeParProgress(o.Context, in.Chain, in.Platform, o.Parallelism, progress.Func(o.Progress))
}

// FrontierAuto routes between the exact frontier sweep and its search
// approximation with the same policy Auto uses for Optimize: exact on
// homogeneous platforms within the enumeration ceiling, heuristic
// beyond it (large chains, heterogeneous platforms).
func FrontierAuto(in Instance, o Options) ([]FrontierPoint, error) {
	if in.Platform.Homogeneous() && len(in.Chain) <= core.MaxExactTasks {
		return FrontierWith(in, o)
	}
	return FrontierHeuristic(in, o)
}

// FrontierHeuristic approximates the Pareto frontier with the search
// engine for instances beyond the exact enumeration ceiling
// (large chains, heterogeneous platforms): a lower bound on the true
// surface built from the §7 seed pool plus search-refined optima under
// a ladder of period bounds. Deterministic for a fixed o.Seed.
func FrontierHeuristic(in Instance, o Options) ([]FrontierPoint, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	// One Options→search translation point for the whole stack:
	// core.Exec.SearchOptions (new knobs added there reach the frontier
	// automatically).
	return search.Frontier(in.Chain, in.Platform, o.exec().SearchOptions())
}

// BuildSchedule constructs the closed-form periodic timetable of a
// mapping at the given injection period (≥ the mapping's worst-case
// period): the concrete schedule whose existence the real-time contract
// of §1 presumes.
func BuildSchedule(in Instance, m Mapping, period float64) (*Schedule, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	return sched.Build(in.Chain, in.Platform, m, period)
}

// MinimizeCost returns the cheapest mapping meeting a reliability floor
// (success probability per data set; 0 for unconstrained) and the
// bounds — the resource-cost extension of §9. The Auto method runs the
// enumerative exact solver on small homogeneous instances and the
// heuristic search engine beyond that ceiling (including heterogeneous
// platforms).
func MinimizeCost(in Instance, costs []float64, minReliability float64, b Bounds) (CostSolution, error) {
	return MinimizeCostWith(in, costs, minReliability, b, Auto, Options{})
}

// MinimizeCostWith is MinimizeCost with an explicit method (Auto,
// Exact or Heuristic) and execution options.
func MinimizeCostWith(in Instance, costs []float64, minReliability float64, b Bounds, m Method, o Options) (CostSolution, error) {
	minLogRel := math.Inf(-1)
	if minReliability > 0 {
		minLogRel = math.Log(minReliability)
	}
	return core.MinimizeCostExec(in, costs, minLogRel, b, m, o.exec())
}

// OptimizeShared maps several independent applications onto one shared
// homogeneous platform (the Autosar situation of the paper's §1:
// multiple vehicle functions sharing the ECUs), partitioning the
// processors to maximize the joint reliability while every application
// meets its own period and latency bounds.
func OptimizeShared(apps []SharedApp, pl Platform) (SharedResult, error) {
	return multichain.Map(apps, pl)
}

// MTTF returns the mean time to the first failed data set of a mapping
// with the given per-data-set failure probability, processing one data
// set per period.
func MTTF(failProb, period float64) (float64, error) { return mttf.MTTF(failProb, period) }

// MissionSurvival returns the probability that every data set of a
// mission of the given duration is processed correctly.
func MissionSurvival(failProb, period, mission float64) (float64, error) {
	return mttf.MissionSurvival(failProb, period, mission)
}
