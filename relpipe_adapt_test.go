package relpipe_test

import (
	"reflect"
	"testing"

	"relpipe"
)

// TestAdaptBatchBitIdenticalAcrossParallelism is the facade-level half
// of the adapt differential gate: a fixed-seed batch must be
// bit-identical at P ∈ {1, 2, 8} for every policy.
func TestAdaptBatchBitIdenticalAcrossParallelism(t *testing.T) {
	in := relpipe.Instance{
		Chain:    relpipe.RandomChain(11, 10, 1, 100, 1, 10),
		Platform: relpipe.HomogeneousPlatform(8, 1, 1e-8, 1, 1e-5, 3),
	}
	sol, err := relpipe.Optimize(in, relpipe.Bounds{}, relpipe.Auto)
	if err != nil {
		t.Fatal(err)
	}
	for _, policy := range relpipe.AdaptPolicies() {
		ao := relpipe.AdaptOptions{
			Policy: policy, Horizon: 1000, LifeScale: 1e5,
			Spares: 2, Seed: 1, Restarts: 1, Budget: 200,
		}
		base, err := relpipe.AdaptBatch(in, sol.Mapping, ao, 6, relpipe.Options{Parallelism: 1})
		if err != nil {
			t.Fatalf("%v: %v", policy, err)
		}
		if base.Summarize().MeanCrashes == 0 {
			t.Fatalf("%v: no crashes in the differential instance", policy)
		}
		for _, p := range []int{2, 8} {
			got, err := relpipe.AdaptBatch(in, sol.Mapping, ao, 6, relpipe.Options{Parallelism: p})
			if err != nil {
				t.Fatalf("%v P=%d: %v", policy, p, err)
			}
			if !reflect.DeepEqual(base, got) {
				t.Fatalf("%v: AdaptBatch differs between P=1 and P=%d", policy, p)
			}
		}
	}
}

// TestAdaptZeroFailurePlatformMatchesStatic is the other half: with
// zero processor failure rates no crash can occur, so every policy must
// reproduce the static Optimize mapping's reliability exactly (the
// links keep the per-data-set reliability strictly below 1).
func TestAdaptZeroFailurePlatformMatchesStatic(t *testing.T) {
	in := relpipe.Instance{
		Chain:    relpipe.RandomChain(13, 10, 1, 100, 1, 10),
		Platform: relpipe.HomogeneousPlatform(8, 1, 0, 1, 1e-4, 3),
	}
	// A period bound forces a multi-interval mapping, so boundary links
	// keep the reliability non-trivial.
	sol, err := relpipe.Optimize(in, relpipe.Bounds{Period: 150}, relpipe.Auto)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Eval.LogRel == 0 {
		t.Fatal("degenerate static mapping: reliability exactly 1")
	}
	for _, policy := range relpipe.AdaptPolicies() {
		res, err := relpipe.Adapt(in, sol.Mapping, relpipe.AdaptOptions{
			Policy: policy, Horizon: 2000, Period: 150, Spares: 2, Seed: 1,
		})
		if err != nil {
			t.Fatalf("%v: %v", policy, err)
		}
		if res.Metrics.Crashes != 0 {
			t.Fatalf("%v: crash on a zero-failure-rate platform", policy)
		}
		if res.Metrics.MeanLogRel != sol.Eval.LogRel {
			t.Fatalf("%v: MeanLogRel %g != static %g", policy, res.Metrics.MeanLogRel, sol.Eval.LogRel)
		}
		wantSurv := (2000 / 150.0) * sol.Eval.LogRel
		if res.Metrics.MissionLogSurvival != wantSurv {
			t.Fatalf("%v: MissionLogSurvival %g != %g", policy, res.Metrics.MissionLogSurvival, wantSurv)
		}
		if res.Metrics.Availability != 1 || res.Metrics.Violated {
			t.Fatalf("%v: drifted metrics: %+v", policy, res.Metrics)
		}
	}
}
