package relpipe_test

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"relpipe"
)

func demoInstance() relpipe.Instance {
	return relpipe.Instance{
		Chain: relpipe.Chain{
			{Work: 40, Out: 4}, {Work: 65, Out: 8}, {Work: 30, Out: 2},
			{Work: 55, Out: 6}, {Work: 25, Out: 0},
		},
		Platform: relpipe.HomogeneousPlatform(8, 1, 1e-8, 1, 1e-5, 3),
	}
}

func TestPublicOptimizeEvaluateRoundTrip(t *testing.T) {
	inst := demoInstance()
	sol, err := relpipe.Optimize(inst, relpipe.Bounds{Period: 120, Latency: 250}, relpipe.Auto)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := relpipe.Evaluate(inst, sol.Mapping)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ev.FailProb-sol.Eval.FailProb) > 1e-15 {
		t.Fatalf("Evaluate %v != Optimize eval %v", ev.FailProb, sol.Eval.FailProb)
	}
	if !ev.MeetsBounds(120, 250) {
		t.Fatal("solution violates its own bounds")
	}
}

func TestPublicInfeasible(t *testing.T) {
	_, err := relpipe.Optimize(demoInstance(), relpipe.Bounds{Period: 1}, relpipe.Auto)
	if !errors.Is(err, relpipe.ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestPublicMinPeriod(t *testing.T) {
	inst := demoInstance()
	unconstrained, err := relpipe.MinPeriod(inst, 0)
	if err != nil {
		t.Fatal(err)
	}
	floored, err := relpipe.MinPeriod(inst, 1-1e-13)
	if err != nil {
		t.Fatal(err)
	}
	if floored.Eval.WorstPeriod < unconstrained.Eval.WorstPeriod-1e-9 {
		t.Fatalf("reliability floor shrank the period: %v < %v",
			floored.Eval.WorstPeriod, unconstrained.Eval.WorstPeriod)
	}
	if floored.Eval.FailProb > 1e-13 {
		t.Fatalf("floored solution failure %v above the floor", floored.Eval.FailProb)
	}
}

func TestPublicRandomChain(t *testing.T) {
	c := relpipe.RandomChain(5, 12, 1, 100, 1, 10)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(c) != 12 {
		t.Fatalf("len = %d", len(c))
	}
	c2 := relpipe.RandomChain(5, 12, 1, 100, 1, 10)
	for i := range c {
		if c[i] != c2[i] {
			t.Fatal("RandomChain not deterministic by seed")
		}
	}
}

func TestPublicUnroutedFailProb(t *testing.T) {
	// The unrouted (single-hop, direct replica-to-replica) diagram is
	// more reliable than the routed two-hop accounting on a lossy
	// platform — the paper's future-work trade-off quantified.
	inst := relpipe.Instance{
		Chain:    relpipe.Chain{{Work: 10, Out: 5}, {Work: 12, Out: 0}},
		Platform: relpipe.HomogeneousPlatform(4, 1, 1e-3, 1, 1e-3, 2),
	}
	sol, err := relpipe.Optimize(inst, relpipe.Bounds{}, relpipe.Exact)
	if err != nil {
		t.Fatal(err)
	}
	unrouted, err := relpipe.UnroutedFailProb(inst, sol.Mapping)
	if err != nil {
		t.Fatal(err)
	}
	if unrouted <= 0 || unrouted >= 1 {
		t.Fatalf("unrouted fail prob = %v", unrouted)
	}
	if unrouted > sol.Eval.FailProb {
		t.Fatalf("unrouted %v > routed %v; removing router hops cannot hurt symmetric replication",
			unrouted, sol.Eval.FailProb)
	}
}

func TestEndToEndSimulationAgreesWithAnalysis(t *testing.T) {
	// Full workflow: generate, optimize, simulate with scaled rates,
	// compare to the analytic failure probability.
	inst := relpipe.Instance{
		Chain:    relpipe.RandomChain(77, 10, 1, 100, 1, 10),
		Platform: relpipe.HomogeneousPlatform(8, 1, 1e-8*1e5, 1, 1e-5*1e5, 3),
	}
	sol, err := relpipe.Optimize(inst, relpipe.Bounds{Period: 200}, relpipe.Auto)
	if err != nil {
		t.Fatal(err)
	}
	const n = 30000
	res, err := relpipe.Simulate(relpipe.SimConfig{
		Chain: inst.Chain, Platform: inst.Platform, Mapping: sol.Mapping,
		Period: 200, DataSets: n, Seed: 7, InjectFailures: true,
		Routing: relpipe.SimTwoHop, WarmUp: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := sol.Eval.FailProb
	sigma := math.Sqrt(p * (1 - p) / n)
	if math.Abs(res.FailureRate()-p) > 5*sigma+1e-9 {
		t.Fatalf("simulated %v vs analytic %v (σ=%v)", res.FailureRate(), p, sigma)
	}
}

func ExampleOptimize() {
	inst := relpipe.Instance{
		Chain:    relpipe.Chain{{Work: 40, Out: 4}, {Work: 65, Out: 8}, {Work: 25, Out: 0}},
		Platform: relpipe.HomogeneousPlatform(6, 1, 1e-8, 1, 1e-5, 3),
	}
	sol, err := relpipe.Optimize(inst, relpipe.Bounds{Period: 120, Latency: 250}, relpipe.Auto)
	if err != nil {
		fmt.Println("infeasible:", err)
		return
	}
	fmt.Printf("intervals=%d period=%.0f latency=%.0f\n",
		len(sol.Mapping.Parts), sol.Eval.WorstPeriod, sol.Eval.WorstLatency)
	// Output: intervals=2 period=90 latency=134
}

func ExampleMinPeriod() {
	inst := relpipe.Instance{
		Chain:    relpipe.Chain{{Work: 30, Out: 2}, {Work: 30, Out: 2}, {Work: 30, Out: 0}},
		Platform: relpipe.HomogeneousPlatform(6, 1, 1e-8, 1, 1e-5, 3),
	}
	sol, err := relpipe.MinPeriod(inst, 0)
	if err != nil {
		fmt.Println("infeasible:", err)
		return
	}
	fmt.Printf("min period=%.0f with %d intervals\n", sol.Eval.WorstPeriod, len(sol.Mapping.Parts))
	// Output: min period=30 with 3 intervals
}
