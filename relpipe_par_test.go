package relpipe_test

import (
	"reflect"
	"testing"

	"relpipe"
)

// TestOptimizeWithParallelismInvariance asserts the public facade's
// contract: Options.Parallelism never changes a solution, across
// methods, on randomized instances.
func TestOptimizeWithParallelismInvariance(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		inst := relpipe.Instance{
			Chain:    relpipe.RandomChain(seed, 12, 1, 100, 1, 10),
			Platform: relpipe.HomogeneousPlatform(8, 1, 1e-8, 1, 1e-5, 3),
		}
		b := relpipe.Bounds{Period: 250, Latency: 900}
		for _, method := range []relpipe.Method{relpipe.Exact, relpipe.DP} {
			bounds := b
			if method == relpipe.DP {
				bounds.Latency = 0
			}
			want, wantErr := relpipe.OptimizeWith(inst, bounds, method, relpipe.Options{Parallelism: 1})
			for _, p := range []int{2, 8} {
				got, gotErr := relpipe.OptimizeWith(inst, bounds, method, relpipe.Options{Parallelism: p})
				if (gotErr == nil) != (wantErr == nil) {
					t.Fatalf("seed %d, %v, P=%d: err = %v, want %v", seed, method, p, gotErr, wantErr)
				}
				if gotErr == nil && !reflect.DeepEqual(got, want) {
					t.Fatalf("seed %d, %v, P=%d: solution differs from sequential", seed, method, p)
				}
			}
		}
	}
}

// TestHeuristicParallelismInvariance extends the facade contract to
// the search engine: for a fixed search seed the portfolio's
// deterministic reduce returns the same solution at every degree.
func TestHeuristicParallelismInvariance(t *testing.T) {
	inst := relpipe.Instance{
		Chain:    relpipe.RandomChain(21, 60, 1, 100, 1, 10),
		Platform: relpipe.HomogeneousPlatform(12, 1, 1e-8, 1, 1e-5, 3),
	}
	bounds := relpipe.Bounds{Period: 400, Latency: 4000}
	base := relpipe.Options{Parallelism: 1, Restarts: 4, Budget: 800, Seed: 5}
	want, err := relpipe.OptimizeWith(inst, bounds, relpipe.Heuristic, base)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{2, 8} {
		o := base
		o.Parallelism = p
		got, err := relpipe.OptimizeWith(inst, bounds, relpipe.Heuristic, o)
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("P=%d: heuristic solution differs from sequential", p)
		}
	}
}

func TestFrontierWithParallelismInvariance(t *testing.T) {
	inst := relpipe.Instance{
		Chain:    relpipe.RandomChain(5, 11, 1, 100, 1, 10),
		Platform: relpipe.HomogeneousPlatform(8, 1, 1e-8, 1, 1e-5, 3),
	}
	want, err := relpipe.FrontierWith(inst, relpipe.Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{2, 8} {
		got, err := relpipe.FrontierWith(inst, relpipe.Options{Parallelism: p})
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("P=%d: frontier differs from sequential", p)
		}
	}
}

func TestSimulateBatchParallelismInvariance(t *testing.T) {
	inst := relpipe.Instance{
		Chain:    relpipe.RandomChain(9, 8, 1, 100, 1, 10),
		Platform: relpipe.HomogeneousPlatform(6, 1, 1e-4, 1, 1e-3, 3),
	}
	sol, err := relpipe.Optimize(inst, relpipe.Bounds{}, relpipe.DP)
	if err != nil {
		t.Fatal(err)
	}
	cfg := relpipe.SimConfig{
		Chain: inst.Chain, Platform: inst.Platform, Mapping: sol.Mapping,
		Period: sol.Eval.WorstPeriod, DataSets: 150, Seed: 3,
		InjectFailures: true, Routing: relpipe.SimTwoHop,
	}
	want, err := relpipe.SimulateBatch(cfg, 5, relpipe.Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{2, 8} {
		got, err := relpipe.SimulateBatch(cfg, 5, relpipe.Options{Parallelism: p})
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("P=%d: batch differs from sequential", p)
		}
	}
}
