package relpipe_test

// Facade-level pinning of the flat-array Monte-Carlo engine: the public
// Simulate/SimulateBatch entry points must return bit-identical results
// whether the default engine or the scalar reference oracle
// (SimConfig.ScalarReference) runs, at every parallelism degree. The
// per-field checks live in internal/sim's differential suite; this
// layer guards the facade wiring (option threading, batch dispatch).

import (
	"math"
	"testing"

	"relpipe"
)

func simDiffConfig() relpipe.SimConfig {
	inst := relpipe.Instance{
		Chain:    relpipe.RandomChain(21, 9, 1, 100, 1, 10),
		Platform: relpipe.HomogeneousPlatform(6, 1, 1e-3, 1, 1e-3, 3),
	}
	sol, err := relpipe.Optimize(inst, relpipe.Bounds{Period: 300}, relpipe.Auto)
	if err != nil {
		panic(err)
	}
	return relpipe.SimConfig{
		Chain: inst.Chain, Platform: inst.Platform, Mapping: sol.Mapping,
		Period: 300, DataSets: 500, Seed: 13, InjectFailures: true,
		Routing: relpipe.SimTwoHop, WarmUp: 20,
	}
}

func sameFloat(a, b float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	return math.Float64bits(a) == math.Float64bits(b)
}

func TestSimulateMatchesScalarReference(t *testing.T) {
	cfg := simDiffConfig()
	got, err := relpipe.Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref := cfg
	ref.ScalarReference = true
	want, err := relpipe.Simulate(ref)
	if err != nil {
		t.Fatal(err)
	}
	if got.DataSets != want.DataSets || got.Successes != want.Successes ||
		!sameFloat(got.SteadyPeriod, want.SteadyPeriod) ||
		!sameFloat(got.MeanLatency(), want.MeanLatency()) {
		t.Fatalf("facade Simulate diverges from scalar reference: %+v vs %+v", got, want)
	}
}

func TestSimulateBatchMatchesScalarReferenceAcrossParallelism(t *testing.T) {
	cfg := simDiffConfig()
	ref := cfg
	ref.ScalarReference = true
	want, err := relpipe.SimulateBatch(ref, 6, relpipe.Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{1, 8} {
		got, err := relpipe.SimulateBatch(cfg, 6, relpipe.Options{Parallelism: p})
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Runs) != len(want.Runs) {
			t.Fatalf("P=%d: %d runs, want %d", p, len(got.Runs), len(want.Runs))
		}
		for r := range got.Runs {
			if got.Seeds[r] != want.Seeds[r] {
				t.Fatalf("P=%d: seed %d diverges", p, r)
			}
			g, w := got.Runs[r], want.Runs[r]
			if g.DataSets != w.DataSets || g.Successes != w.Successes ||
				!sameFloat(g.SteadyPeriod, w.SteadyPeriod) {
				t.Fatalf("P=%d replication %d diverges: %+v vs %+v", p, r, g, w)
			}
			for i := range g.Latencies {
				if !sameFloat(g.Latencies[i], w.Latencies[i]) {
					t.Fatalf("P=%d replication %d latency %d diverges", p, r, i)
				}
			}
		}
		if !sameFloat(got.SuccessRate(), want.SuccessRate()) ||
			!sameFloat(got.MeanLatency(), want.MeanLatency()) ||
			!sameFloat(got.MeanSteadyPeriod(), want.MeanSteadyPeriod()) {
			t.Fatalf("P=%d: batch aggregates diverge", p)
		}
	}
}
