package relpipe_test

// Facade-level pinning of the shared heuristic-tables seam: a solve
// fed pre-built tables through Options.Tables (the solve batcher's
// injection point) must return exactly the solution of a self-building
// solve. The per-candidate checks live in internal/heur and
// internal/search; this layer guards the facade wiring
// (BuildHeuristicTables, the provider call through core.Exec).
import (
	"reflect"
	"testing"

	"relpipe"
)

func TestOptimizeWithSharedHeuristicTables(t *testing.T) {
	inst := relpipe.Instance{
		Chain:    relpipe.RandomChain(17, 40, 1, 100, 1, 10),
		Platform: relpipe.HomogeneousPlatform(10, 1, 1e-8, 1, 1e-5, 3),
	}
	bounds := relpipe.Bounds{Period: 400, Latency: 4000}
	base := relpipe.Options{Restarts: 3, Budget: 500, Seed: 2}
	want, err := relpipe.OptimizeWith(inst, bounds, relpipe.Heuristic, base)
	if err != nil {
		t.Fatal(err)
	}

	tables := relpipe.BuildHeuristicTables(inst)
	if tables == nil {
		t.Fatal("BuildHeuristicTables returned nil")
	}
	calls := 0
	shared := base
	shared.Tables = func(in relpipe.Instance) *relpipe.HeuristicTables {
		calls++
		if in.Canonical() != inst.Canonical() {
			t.Fatalf("provider called with a foreign instance")
		}
		return tables
	}
	got, err := relpipe.OptimizeWith(inst, bounds, relpipe.Heuristic, shared)
	if err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Fatal("Options.Tables provider was never consulted")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("shared-tables solution differs:\n got %+v\nwant %+v", got, want)
	}

	// A provider that declines (nil) must leave the solve untouched too.
	declined := base
	declined.Tables = func(relpipe.Instance) *relpipe.HeuristicTables { return nil }
	got, err = relpipe.OptimizeWith(inst, bounds, relpipe.Heuristic, declined)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("declining tables provider changed the solution")
	}
}
